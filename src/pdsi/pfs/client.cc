#include "pdsi/pfs/client.h"

#include <algorithm>
#include <utility>

#include "pdsi/common/bytes.h"
#include "pdsi/fault/fault.h"

namespace pdsi::pfs {

namespace {
/// 32-bit content fingerprint for consist op annotations: the compact
/// trace format round-trips arg values through doubles, which represent
/// integers exactly only up to 2^53, so the full 64-bit hash is
/// truncated.
std::uint64_t ConsistFp(std::span<const std::uint8_t> data) {
  return HashBytes(data) & 0xffffffffULL;
}
}  // namespace

PfsClient::PfsClient(PfsCluster& cluster, std::size_t actor)
    : cluster_(cluster), actor_(actor) {
  const PfsConfig& cfg = cluster_.config();
  if (obs::Context* ctx = cluster_.obs_ctx()) {
    if (ctx->tracer) {
      ctx->tracer->track(obs::kRankTrackBase + static_cast<std::uint32_t>(actor),
                         "rank" + std::to_string(actor));
    }
    if (ctx->registry) {
      c_lock_conflicts_ = &ctx->registry->counter("pfs.lock_conflicts");
      h_lock_wait_ = &ctx->registry->histogram("pfs.lock_wait_s", obs::LatencyBuckets());
      // Created only for opted-in runs so default metric dumps stay
      // byte-identical.
      if (cfg.consistency != consist::ConsistencyModel::posix) {
        c_lock_skips_ = &ctx->registry->counter("consist.lock_skips");
      }
      if (cfg.record_consist_ops) {
        c_consist_ops_ = &ctx->registry->counter("consist.ops");
      }
      if (cluster_.smds().num_shards() > 1) {
        c_mds_stale_ = &ctx->registry->counter("pfs.mds_stale_retries");
      }
    }
  }
  // One queue per OSS plus one per MDS shard; in the default sync mode
  // the engine is a pure pass-through (no queues used, no instruments
  // made). The wire latency lets the engine attribute the network
  // component in per-request monitor spans (it never charges it itself).
  engine_.configure({cfg.rpc_window, cfg.rpc_batch, cfg.rpc_latency_s},
                    cluster_.num_oss() + cluster_.smds().num_shards(),
                    cluster_.obs_ctx(),
                    obs::kRankTrackBase + static_cast<std::uint32_t>(actor));
}

bool PfsClient::recording_consist() const {
  const PfsConfig& cfg = cluster_.config();
  obs::Context* ctx = cluster_.obs_ctx();
  // Pipelined submission decouples an op's charge from its completion,
  // so the checker's (start, end) interval semantics only hold in sync
  // mode: consist recording requires rpc_window == rpc_batch == 1.
  return cfg.record_consist_ops && cfg.store_data && ctx && ctx->tracer &&
         !engine_.pipelined();
}

void PfsClient::record_consist_op(const char* name, std::uint64_t file_id,
                                  double start, double end, std::uint64_t off,
                                  std::uint64_t len, std::uint64_t fp) {
  cluster_.obs_ctx()->tracer->complete(
      obs::kRankTrackBase + static_cast<std::uint32_t>(actor_), name, "consist",
      start, end,
      {obs::Arg::Int("file", file_id), obs::Arg::Int("off", off),
       obs::Arg::Int("len", len), obs::Arg::Int("fp", fp)});
  if (c_consist_ops_) c_consist_ops_->add(1);
}

void PfsClient::record_consist_edge(const char* name, std::uint64_t file_id,
                                    double ts) {
  cluster_.obs_ctx()->tracer->instant(
      obs::kRankTrackBase + static_cast<std::uint32_t>(actor_), name, "consist",
      ts, {obs::Arg::Int("file", file_id)});
}

double PfsClient::now() const { return cluster_.scheduler().now(actor_); }

PfsClient::OpenFile* PfsClient::get(FileHandle fh) {
  if (fh < 0 || static_cast<std::size_t>(fh) >= open_files_.size()) return nullptr;
  OpenFile& f = open_files_[fh];
  return f.in_use ? &f : nullptr;
}

FileHandle PfsClient::put(std::uint64_t file_id, std::string path) {
  for (std::size_t i = 0; i < open_files_.size(); ++i) {
    if (!open_files_[i].in_use) {
      open_files_[i] = {true, file_id, std::move(path)};
      return static_cast<FileHandle>(i);
    }
  }
  open_files_.push_back({true, file_id, std::move(path)});
  return static_cast<FileHandle>(open_files_.size() - 1);
}

double PfsClient::submit_mds(double t, std::size_t charges, double fraction,
                             std::string parent, std::uint64_t rid,
                             std::uint32_t shard) {
  rpc::RequestEngine::Request req;
  req.queue = mds_queue(shard);
  req.drop_eligible = false;
  req.fault_exempt = true;  // the MDS is outside the fault plan
  req.req_id = rid;
  req.serve = [this, charges, fraction, rid, shard,
               parent = std::move(parent)](double at, bool wire) {
    Mds& mds = cluster_.smds().shard(shard);
    double done = wire ? at + cluster_.config().rpc_latency_s : at;
    for (std::size_t i = 0; i < charges; ++i) {
      done = fraction >= 1.0 ? mds.charge(done, rid)
                             : mds.charge_fraction(done, fraction, rid);
    }
    if (!parent.empty()) done = mds.charge_dir(parent, done, rid);
    return done;
  };
  return engine_.submit(std::move(req), t, nullptr);
}

std::uint32_t PfsClient::route_mds(const std::string& normalized, double* t,
                                   std::uint64_t rid, double fraction) {
  ShardedMds& smds = cluster_.smds();
  const double lat = cluster_.config().rpc_latency_s;
  const auto charge = [&](std::uint32_t s) {
    *t = fraction >= 1.0
             ? smds.shard(s).charge(*t + lat, rid)
             : smds.shard(s).charge_fraction(*t + lat, fraction, rid);
  };
  if (smds.num_shards() == 1) {
    charge(0);
    return 0;
  }
  const std::uint64_t hash = giga::HashName(normalized);
  for (;;) {
    const std::uint32_t p = mds_bitmap_.partition_for(hash);
    const std::uint32_t s = smds.shard_of(p);
    charge(s);
    if (smds.fresh(p, hash)) return s;
    mds_bitmap_.merge(smds.bitmap());
    if (c_mds_stale_) c_mds_stale_->add(1);
  }
}

std::uint32_t PfsClient::route_mds_queued(const std::string& normalized,
                                          double* t, std::uint64_t rid) {
  ShardedMds& smds = cluster_.smds();
  if (smds.num_shards() == 1) return 0;
  const std::uint64_t hash = giga::HashName(normalized);
  for (;;) {
    const std::uint32_t p = mds_bitmap_.partition_for(hash);
    const std::uint32_t s = smds.shard_of(p);
    if (smds.fresh(p, hash)) return s;
    // The wrong shard still serves (and charges) the bounced request
    // before replying with its fresh bitmap rows.
    *t = submit_mds(*t, 1, 1.0, "", rid, s);
    mds_bitmap_.merge(smds.bitmap());
    if (c_mds_stale_) c_mds_stale_->add(1);
  }
}

Status PfsClient::mkdir(const std::string& path) {
  Status st;
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  cluster_.scheduler().atomically(actor_, [&](double t) {
    st = cluster_.smds().mkdir(np);
    if (engine_.pipelined()) {
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      return submit_mds(t, 1, 1.0, ParentPath(np), rid, s);
    }
    const std::uint32_t s = route_mds(np, &t, rid);
    return cluster_.smds().shard(s).charge_dir(ParentPath(np), t, rid);
  });
  return st;
}

Result<FileHandle> PfsClient::create(const std::string& path) {
  Result<FileHandle> out(Errc::io_error);
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  if (engine_.pipelined()) {
    cluster_.scheduler().atomically(actor_, [&](double t) {
      // State transitions at submit time (the inode's mtime stamps the
      // submission); the metadata charge rides the MDS queue.
      auto r = cluster_.smds().create(np, t);
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      if (r.ok()) {
        out = put(r->file_id, np);
        t = submit_mds(t, 1, 1.0, ParentPath(np), rid, s);
      } else {
        out = r.error();
        t = submit_mds(t, 1, 1.0, "", rid, s);
      }
      // A triggered split blocks this client: its submission window
      // stalls while the addressed shard migrates the partition.
      return cluster_.smds().settle_splits(t, rid);
    });
    return out;
  }
  cluster_.scheduler().atomically(actor_, [&](double t) {
    const std::uint32_t s = route_mds(np, &t, rid);
    auto r = cluster_.smds().create(np, t);
    if (r.ok()) {
      t = cluster_.smds().shard(s).charge_dir(ParentPath(np), t, rid);
      out = put(r->file_id, np);
      if (recording_consist()) record_consist_edge("open", r->file_id, t);
    } else {
      out = r.error();
    }
    return cluster_.smds().settle_splits(t, rid);
  });
  return out;
}

Result<FileHandle> PfsClient::open(const std::string& path) {
  Result<FileHandle> out(Errc::io_error);
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  cluster_.scheduler().atomically(actor_, [&](double t) {
    if (engine_.pipelined()) {
      auto r = cluster_.smds().lookup(np);
      if (!r.ok()) {
        out = r.error();
      } else if (r->is_dir) {
        out = Errc::is_dir;
      } else {
        out = put(r->file_id, np);
      }
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      return submit_mds(t, 1, 1.0, "", rid, s);
    }
    route_mds(np, &t, rid);
    auto r = cluster_.smds().lookup(np);
    if (!r.ok()) {
      out = r.error();
    } else if (r->is_dir) {
      out = Errc::is_dir;
    } else {
      out = put(r->file_id, np);
      if (recording_consist()) record_consist_edge("open", r->file_id, t);
    }
    return t;
  });
  return out;
}

Result<StatResult> PfsClient::stat(const std::string& path) {
  Result<StatResult> out(Errc::io_error);
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  cluster_.scheduler().atomically(actor_, [&](double t) {
    if (engine_.pipelined()) {
      auto r = cluster_.smds().lookup(np);
      if (r.ok()) {
        out = StatResult{r->size, r->is_dir, r->mtime};
      } else {
        out = r.error();
      }
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      return submit_mds(t, 1, 1.0, "", rid, s);
    }
    route_mds(np, &t, rid);
    auto r = cluster_.smds().lookup(np);
    if (r.ok()) {
      out = StatResult{r->size, r->is_dir, r->mtime};
    } else {
      out = r.error();
    }
    return t;
  });
  return out;
}

Result<LayoutInfo> PfsClient::layout(const std::string& path) {
  Result<LayoutInfo> out(Errc::io_error);
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  cluster_.scheduler().atomically(actor_, [&](double t) {
    double done;
    if (engine_.pipelined()) {
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      done = submit_mds(t, 1, 1.0, "", rid, s);
    } else {
      route_mds(np, &t, rid);
      done = t;
    }
    auto r = cluster_.smds().lookup(np);
    if (!r.ok()) {
      out = r.error();
    } else if (r->is_dir) {
      out = Errc::is_dir;
    } else {
      LayoutInfo info;
      info.stripe_unit = cluster_.config().stripe_unit;
      info.lock_unit = cluster_.config().lock_unit;
      info.num_servers = cluster_.num_oss();
      for (std::uint32_t s = 0; s < info.num_servers; ++s) {
        info.first_stripes.push_back(
            cluster_.placement().server_for(r->file_id, s, info.num_servers));
      }
      out = std::move(info);
    }
    return done;
  });
  return out;
}

Result<FileHandle> PfsClient::open_group(const std::string& path,
                                         std::uint32_t group_size) {
  Result<FileHandle> out(Errc::io_error);
  const double fraction = 1.0 / std::max<std::uint32_t>(1, group_size);
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  cluster_.scheduler().atomically(actor_, [&](double t) {
    // One metadata op amortised over the group: the MDS answers once and
    // the result is broadcast over the (cheap) interconnect.
    double done;
    if (engine_.pipelined()) {
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      done = submit_mds(t, 1, fraction, "", rid, s);
    } else {
      route_mds(np, &t, rid, fraction);
      done = t;
    }
    auto r = cluster_.smds().lookup(np);
    if (!r.ok()) {
      out = r.error();
    } else if (r->is_dir) {
      out = Errc::is_dir;
    } else {
      out = put(r->file_id, np);
      if (recording_consist()) record_consist_edge("open", r->file_id, done);
    }
    return done;
  });
  return out;
}

Result<std::vector<std::string>> PfsClient::readdir(const std::string& path) {
  Result<std::vector<std::string>> out(Errc::io_error);
  const std::uint64_t rid = mint_req();
  const std::string np = NormalizePath(path);
  const std::uint32_t nshards = cluster_.smds().num_shards();
  cluster_.scheduler().atomically(actor_, [&](double t) {
    if (engine_.pipelined()) {
      auto r = cluster_.smds().readdir(np);
      const std::uint32_t s = route_mds_queued(np, &t, rid);
      // Sharded listings scatter-gather: every other shard serves one
      // list op too (queued on its own queue).
      for (std::uint32_t k = 0; k < nshards; ++k) {
        if (k != s) t = submit_mds(t, 1, 1.0, "", rid, k);
      }
      if (r.ok()) {
        const std::size_t batches = r->empty() ? 0 : (r->size() - 1) / 1024;
        out = std::move(r);
        return submit_mds(t, 1 + batches, 1.0, "", rid, s);
      }
      out = r.error();
      return submit_mds(t, 1, 1.0, "", rid, s);
    }
    const std::uint32_t s = route_mds(np, &t, rid);
    if (nshards > 1) {
      // The addressed shard coordinates the gather; the other shards
      // each serve one list op in parallel.
      double gathered = t;
      for (std::uint32_t k = 0; k < nshards; ++k) {
        if (k == s) continue;
        gathered = std::max(
            gathered, cluster_.smds().shard(k).charge(
                          t + cluster_.config().rpc_latency_s, rid));
      }
      t = gathered;
    }
    auto r = cluster_.smds().readdir(np);
    if (r.ok()) {
      // Large listings stream in bounded batches; the first 1024 entries
      // arrive with the initial RPC reply, so only the entries beyond
      // them cost extra round trips.
      const std::size_t batches = r->empty() ? 0 : (r->size() - 1) / 1024;
      for (std::size_t b = 0; b < batches; ++b) {
        t = cluster_.smds().shard(s).charge(t, rid);
      }
      out = std::move(r);
    } else {
      out = r.error();
    }
    return t;
  });
  return out;
}

double PfsClient::unlink_core(const std::string& path, double t, Status* st,
                              std::uint64_t rid) {
  const std::string np = NormalizePath(path);
  route_mds(np, &t, rid);
  auto looked = cluster_.smds().lookup(np);
  const std::uint32_t nshards = cluster_.smds().num_shards();
  if (nshards > 1 && looked.ok() && looked->is_dir) {
    // Directory emptiness is an every-shard probe (children may live on
    // any shard); the probes fan out in parallel.
    double probed = t;
    for (std::uint32_t k = 0; k < nshards; ++k) {
      probed = std::max(probed,
                        cluster_.smds().shard(k).charge(
                            t + cluster_.config().rpc_latency_s, rid));
    }
    t = probed;
  }
  double done = t;
  *st = cluster_.smds().unlink(np);
  if (st->ok() && looked.ok() && !looked->is_dir) {
    const std::uint64_t fid = looked->file_id;
    for (std::uint32_t s : cluster_.touched_servers(fid)) {
      done = std::max(done, cluster_.oss(s).serve_small_op(done, rid));
      cluster_.oss(s).forget(fid);
    }
    cluster_.drop_data(fid);
    cluster_.drop_locks(fid);
    cluster_.drop_touched(fid);
  }
  return done;
}

Status PfsClient::unlink(const std::string& path) {
  Status st;
  const std::uint64_t rid = mint_req();
  cluster_.scheduler().atomically(actor_, [&](double t) {
    if (engine_.pipelined()) {
      // Queued chunks may still target this file's objects (and decide
      // which servers count as touched), so teardown waits for them.
      bool dok = true;
      t = engine_.drain(t, cluster_.fault(), &dok);
      if (!dok) pending_io_error_ = true;
    }
    return unlink_core(path, t, &st, rid);
  });
  return st;
}

Status PfsClient::rename(const std::string& from, const std::string& to) {
  Status st;
  const std::uint64_t rid = mint_req();
  const std::string nf = NormalizePath(from);
  const std::string nt = NormalizePath(to);
  const std::uint32_t nshards = cluster_.smds().num_shards();
  cluster_.scheduler().atomically(actor_, [&](double t) {
    st = cluster_.smds().rename(nf, nt, t);
    if (engine_.pipelined()) {
      const std::uint32_t s = route_mds_queued(nf, &t, rid);
      t = submit_mds(t, 1, 1.0, "", rid, s);
      if (nshards > 1) {
        // Cross-shard rename is a two-phase op: the destination shard
        // serves the install leg.
        const std::uint32_t d = route_mds_queued(nt, &t, rid);
        if (d != s) t = submit_mds(t, 1, 1.0, "", rid, d);
      }
      return cluster_.smds().settle_splits(t, rid);
    }
    const std::uint32_t s = route_mds(nf, &t, rid);
    if (nshards > 1) {
      const std::uint32_t d = cluster_.smds().home_shard(nt);
      if (d != s) route_mds(nt, &t, rid);
    }
    return cluster_.smds().settle_splits(t, rid);
  });
  return st;
}

double PfsClient::acquire_locks(std::uint64_t file_id, std::uint64_t off,
                                std::uint64_t len, double t,
                                WholeFileGrant* grant) {
  const PfsConfig& cfg = cluster_.config();
  if (cfg.locking == LockProtocol::none || len == 0) return t;

  if (cfg.locking == LockProtocol::whole_file) {
    auto& unit = cluster_.lock_unit(file_id, 0);
    double start = std::max(t, unit.free);
    const bool revoked = unit.holder != static_cast<std::uint32_t>(actor_) &&
                         unit.holder != PfsCluster::kNoHolder;
    if (revoked) start += cfg.lock_revoke_s;
    if (start > t) {
      if (revoked && c_lock_conflicts_) c_lock_conflicts_->add(1);
      if (h_lock_wait_) h_lock_wait_->add(start - t);
      if (obs::Context* ctx = cluster_.obs_ctx(); ctx && ctx->tracer) {
        ctx->tracer->complete(
            obs::kRankTrackBase + static_cast<std::uint32_t>(actor_), "lock_wait",
            "pfs", t, start, {obs::Arg::Int("file", file_id)});
      }
    }
    unit.holder = static_cast<std::uint32_t>(actor_);
    grant->arm(&unit, start);  // caller completes with the op's finish time
    return start;
  }

  // Extent tokens: conflicting units must be revoked from their holders.
  // Revocation callbacks to distinct holders go out in parallel, so a
  // conflicted write pays one revocation round trip, serialised after the
  // conflicting units' earliest transfer instants.
  const std::uint64_t first = off / cfg.lock_unit;
  const std::uint64_t last = (off + len - 1) / cfg.lock_unit;
  bool conflict = false;
  double transferable = t;
  for (std::uint64_t u = first; u <= last; ++u) {
    auto& unit = cluster_.lock_unit(file_id, u);
    if (unit.holder != static_cast<std::uint32_t>(actor_)) {
      if (unit.holder != PfsCluster::kNoHolder) {
        conflict = true;
        transferable = std::max(transferable, unit.free);
      }
    }
  }
  double granted = transferable;
  if (conflict) granted += cfg.lock_revoke_s;
  if (granted > t) {
    if (c_lock_conflicts_) c_lock_conflicts_->add(1);
    if (h_lock_wait_) h_lock_wait_->add(granted - t);
    if (obs::Context* ctx = cluster_.obs_ctx(); ctx && ctx->tracer) {
      ctx->tracer->complete(
          obs::kRankTrackBase + static_cast<std::uint32_t>(actor_), "lock_wait",
          "pfs", t, granted,
          {obs::Arg::Int("file", file_id), obs::Arg::Int("units", last - first + 1)});
    }
  }
  for (std::uint64_t u = first; u <= last; ++u) {
    auto& unit = cluster_.lock_unit(file_id, u);
    unit.holder = static_cast<std::uint32_t>(actor_);
    unit.free = granted;
  }
  return granted;
}

rpc::RequestEngine::Request PfsClient::chunk_request(std::uint32_t server,
                                                     std::uint64_t file_id,
                                                     std::uint64_t off,
                                                     std::uint64_t len,
                                                     bool is_read,
                                                     std::uint64_t rid) {
  rpc::RequestEngine::Request req;
  req.queue = server;
  req.drop_eligible = true;
  req.req_id = rid;
  if (is_read) {
    req.serve = [this, server, file_id, off, len, rid](double at, bool wire) {
      return cluster_.oss(server).serve_read(file_id, off, len, at, wire, rid);
    };
    // Reads from a crashed server go to a surviving server once the
    // first attempt has timed out (the crash is detected, never
    // predicted) — the engine consults this from the second attempt on.
    req.failover = [this, server, file_id, off, len,
                    rid](double at, bool* served) {
      fault::FaultInjector* inj = cluster_.fault();
      for (std::uint32_t step = 1; step < cluster_.num_oss(); ++step) {
        const std::uint32_t cand = (server + step) % cluster_.num_oss();
        if (!inj->down(cand, at)) {
          inj->note_failover(server, cand, at);
          *served = true;
          return cluster_.oss(cand).serve_failover_read(file_id, off, len, at,
                                                        rid);
        }
      }
      *served = false;
      return at;
    };
  } else {
    // The server registers as touched only when the chunk actually
    // lands: the engine never calls serve for a request that exhausted
    // its retries, so a wholesale-failed write cannot leave phantom
    // entries for fsync/unlink to charge later.
    req.serve = [this, server, file_id, off, len, rid](double at, bool wire) {
      const double done =
          cluster_.oss(server).serve_write(file_id, off, len, at, wire, rid);
      cluster_.touched_servers(file_id).insert(server);
      return done;
    };
  }
  return req;
}

Status PfsClient::write(FileHandle fh, std::uint64_t off,
                        std::span<const std::uint8_t> data) {
  OpenFile* f = get(fh);
  if (!f) return Errc::bad_handle;
  if (data.empty()) return Status::Ok();
  const PfsConfig& cfg = cluster_.config();
  Status st = Status::Ok();
  const std::uint64_t rid = mint_req();

  if (engine_.pipelined()) {
    cluster_.scheduler().atomically(actor_, [&](double t0) {
      WholeFileGrant whole;
      double t = t0;
      if (cfg.consistency == consist::ConsistencyModel::posix) {
        t = acquire_locks(f->file_id, off, data.size(), t0, &whole);
      } else if (c_lock_skips_) {
        c_lock_skips_->add(1);
      }
      // Async semantics: the payload lands and the size extends at
      // submission; a chunk that later exhausts its retries surfaces as
      // an io_error at the next fsync/close (and the bytes it covered
      // may be torn) — the O_DIRECT/AIO contract.
      if (auto* buf = cluster_.data_for(f->file_id, true)) buf->write(off, data);
      cluster_.smds().extend(f->path, off + data.size(), t);
      std::uint64_t pos = off;
      std::size_t i = 0;
      while (i < data.size()) {
        const std::uint64_t stripe = pos / cfg.stripe_unit;
        const std::uint64_t in_stripe = pos % cfg.stripe_unit;
        const std::uint64_t n =
            std::min<std::uint64_t>(cfg.stripe_unit - in_stripe, data.size() - i);
        const std::uint32_t server = cluster_.placement().server_for(
            f->file_id, stripe, cluster_.num_oss());
        t = engine_.submit(chunk_request(server, f->file_id, pos, n,
                                         /*is_read=*/false, rid),
                           t, cluster_.fault());
        pos += n;
        i += n;
      }
      // A pipelined holder cannot stamp the grant with a completion it
      // has not awaited: the whole-file token serialises submission
      // windows, not durable completion (which fsync still awaits).
      whole.complete(t);
      return t;
    });
    return st;
  }

  cluster_.scheduler().atomically(actor_, [&](double t0) {
    WholeFileGrant whole;
    double t = t0;
    if (cfg.consistency == consist::ConsistencyModel::posix) {
      t = acquire_locks(f->file_id, off, data.size(), t0, &whole);
    } else {
      // Relaxed models trade the lock charge for deferred visibility:
      // nothing is promised to other clients until close (session) or
      // sync (commit/mpiio) publishes it.
      if (c_lock_skips_) c_lock_skips_->add(1);
    }

    // Stripe the request over the servers; chunks proceed in parallel.
    double done = t;
    std::uint64_t pos = off;
    std::size_t i = 0;
    while (i < data.size()) {
      const std::uint64_t stripe = pos / cfg.stripe_unit;
      const std::uint64_t in_stripe = pos % cfg.stripe_unit;
      const std::uint64_t n =
          std::min<std::uint64_t>(cfg.stripe_unit - in_stripe, data.size() - i);
      const std::uint32_t server =
          cluster_.placement().server_for(f->file_id, stripe, cluster_.num_oss());
      bool ok = true;
      done = std::max(done,
                      engine_.execute(chunk_request(server, f->file_id, pos, n,
                                                    /*is_read=*/false, rid),
                                      t, cluster_.fault(), /*charge_wire=*/true,
                                      &ok));
      if (!ok) {
        st = Errc::io_error;
        break;
      }
      pos += n;
      i += n;
    }
    whole.complete(done);

    // A failed write is failed wholesale: no payload lands and the MDS
    // size is not extended (the time spent trying is still charged).
    if (st.ok()) {
      if (auto* buf = cluster_.data_for(f->file_id, true)) buf->write(off, data);
      cluster_.smds().extend(f->path, off + data.size(), done);
      if (recording_consist()) {
        // The span starts at the lock grant, not the call: waiting under
        // a conflicting lock is serialisation working, not a violation.
        record_consist_op("write", f->file_id, t, done, off, data.size(),
                          ConsistFp(data));
        if (cfg.consistency == consist::ConsistencyModel::posix) {
          record_consist_edge("pub", f->file_id, done);
        }
      }
    }
    return done;
  });
  return st;
}

double PfsClient::read_core(OpenFile* f, std::uint64_t off,
                            std::span<std::uint8_t> out, double t,
                            Result<std::size_t>* result, std::uint64_t rid) {
  auto inode = cluster_.smds().lookup(f->path);
  if (!inode.ok()) {
    *result = inode.error();
    return t;
  }
  const std::uint64_t size = inode->size;
  if (off >= size || out.empty()) {
    *result = static_cast<std::size_t>(0);
    return t;
  }
  const std::uint64_t len = std::min<std::uint64_t>(out.size(), size - off);
  const PfsConfig& cfg = cluster_.config();

  double done = t;
  std::uint64_t pos = off;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t stripe = pos / cfg.stripe_unit;
    const std::uint64_t in_stripe = pos % cfg.stripe_unit;
    const std::uint64_t n = std::min(cfg.stripe_unit - in_stripe, remaining);
    const std::uint32_t server =
        cluster_.placement().server_for(f->file_id, stripe, cluster_.num_oss());
    bool ok = true;
    done = std::max(done,
                    engine_.execute(chunk_request(server, f->file_id, pos, n,
                                                  /*is_read=*/true, rid),
                                    t, cluster_.fault(),
                                    /*charge_wire=*/true, &ok));
    if (!ok) {
      *result = Errc::io_error;
      return done;
    }
    pos += n;
    remaining -= n;
  }
  if (const auto* buf = cluster_.data_for(f->file_id, false)) {
    buf->read(off, out.subspan(0, len));
  } else if (recording_consist()) {
    // No payload buffer yet (file extended but never written here):
    // holes read as zeros, and the fingerprint must say so.
    std::fill(out.begin(), out.begin() + len, std::uint8_t{0});
  }
  *result = static_cast<std::size_t>(len);
  if (recording_consist() && len > 0) {
    record_consist_op("read", f->file_id, t, done, off, len,
                      ConsistFp(out.subspan(0, len)));
  }
  return done;
}

Result<std::size_t> PfsClient::read(FileHandle fh, std::uint64_t off,
                                    std::span<std::uint8_t> out) {
  OpenFile* f = get(fh);
  if (!f) return Errc::bad_handle;
  Result<std::size_t> result(static_cast<std::size_t>(0));
  const std::uint64_t rid = mint_req();

  cluster_.scheduler().atomically(actor_, [&](double t0) {
    double t = t0;
    if (engine_.pipelined()) {
      // A read is a synchronisation point: it queues behind everything
      // this client already submitted (read-after-write ordering), and
      // any asynchronous failure it observes is latched for the next
      // fsync/close to report.
      bool dok = true;
      t = engine_.drain(t0, cluster_.fault(), &dok);
      if (!dok) pending_io_error_ = true;
    }
    return read_core(f, off, out, t, &result, rid);
  });
  return result;
}

double PfsClient::flush_touched(std::uint64_t file_id, double t, Status* st,
                                std::uint64_t rid) {
  double done = t;
  for (std::uint32_t s : cluster_.touched_servers(file_id)) {
    rpc::RequestEngine::Request req;
    req.queue = s;
    // Availability wait, not a data RPC: flushes cannot fail over and
    // must not consume the injector's per-server drop stream.
    req.drop_eligible = false;
    req.req_id = rid;
    req.serve = [this, s, file_id](double at, bool) {
      return cluster_.oss(s).flush(file_id, at);
    };
    bool ok = true;
    const double at =
        engine_.execute(req, t, cluster_.fault(), /*charge_wire=*/true, &ok);
    done = std::max(done, at);
    if (!ok) {
      // This server's dirty data cannot be forced out; keep flushing
      // the others so their state is durable, but report the failure.
      *st = Errc::io_error;
    }
  }
  return done;
}

Status PfsClient::fsync(FileHandle fh) {
  OpenFile* f = get(fh);
  if (!f) return Errc::bad_handle;
  const consist::ConsistencyModel model = cluster_.config().consistency;
  Status st = Status::Ok();
  const std::uint64_t rid = mint_req();
  cluster_.scheduler().atomically(actor_, [&](double t) {
    if (engine_.pipelined()) {
      // The sync barrier: every queued chunk flushes, every in-flight
      // completion lands, and asynchronous write failures surface here.
      bool dok = true;
      t = engine_.drain(t, cluster_.fault(), &dok);
      if (!dok || pending_io_error_) {
        st = Errc::io_error;
        pending_io_error_ = false;
      }
    }
    double done = flush_touched(f->file_id, t, &st, rid);
    if (st.ok() &&
        (model == consist::ConsistencyModel::commit ||
         model == consist::ConsistencyModel::mpiio)) {
      // Commit publishes at every sync with a full metadata op; mpiio's
      // collective sync-barrier-sync batches the exchange, so each
      // participant pays only a fraction of it.
      const double fraction = model == consist::ConsistencyModel::mpiio
                                  ? cluster_.config().mpiio_sync_fraction
                                  : 1.0;
      done = cluster_.smds()
                 .shard(cluster_.smds().home_shard(f->path))
                 .publish(done, fraction, rid);
      if (recording_consist()) {
        record_consist_edge("sync", f->file_id, done);
        record_consist_edge("pub", f->file_id, done);
      }
    } else if (st.ok() && recording_consist()) {
      record_consist_edge("sync", f->file_id, done);
    }
    return done;
  });
  return st;
}

Status PfsClient::close(FileHandle fh) {
  OpenFile* f = get(fh);
  if (!f) return Errc::bad_handle;
  const consist::ConsistencyModel model = cluster_.config().consistency;
  Status st = Status::Ok();
  if (model == consist::ConsistencyModel::commit ||
      model == consist::ConsistencyModel::mpiio) {
    // Everything visible was already published at sync time; close is a
    // pure handle drop (this is where commit wins its throughput back).
    // A pipelined client still settles its window: in-flight work and
    // latched asynchronous failures cannot outlive the handle.
    if (engine_.pipelined()) {
      cluster_.scheduler().atomically(actor_, [&](double t) {
        bool dok = true;
        const double done = engine_.drain(t, cluster_.fault(), &dok);
        if (!dok || pending_io_error_) {
          st = Errc::io_error;
          pending_io_error_ = false;
        }
        return done;
      });
    }
    if (recording_consist()) record_consist_edge("close", f->file_id, now());
  } else {
    st = fsync(fh);
    if (st.ok() && model == consist::ConsistencyModel::session) {
      // Close-to-open: one metadata op publishes the session's writes.
      const std::uint64_t rid = mint_req();
      cluster_.scheduler().atomically(actor_, [&](double t) {
        const double done =
            cluster_.smds()
                .shard(cluster_.smds().home_shard(f->path))
                .publish(t + cluster_.config().rpc_latency_s, 1.0, rid);
        if (recording_consist()) {
          record_consist_edge("close", f->file_id, done);
          record_consist_edge("pub", f->file_id, done);
        }
        return done;
      });
    } else if (recording_consist()) {
      record_consist_edge("close", f->file_id, now());
    }
  }
  f->in_use = false;
  return st;
}

void PfsClient::compute(double seconds) {
  if (seconds > 0.0) cluster_.scheduler().advance(actor_, seconds);
}

Result<std::uint64_t> PfsClient::file_size(FileHandle fh) {
  OpenFile* f = get(fh);
  if (!f) return Errc::bad_handle;
  auto r = stat(f->path);
  if (!r.ok()) return r.error();
  return r->size;
}

}  // namespace pdsi::pfs
