#include "pdsi/pfs/oss.h"

#include <algorithm>

namespace pdsi::pfs {

Oss::Oss(const PfsConfig& cfg, std::uint32_t index)
    : cfg_(cfg), index_(index), disk_(cfg.disk) {}

void Oss::record(double start, double end, std::uint64_t len) {
  ++metrics_.ops;
  metrics_.bytes += len;
  metrics_.latency.add(end - start);
}

double Oss::flush_pending(ObjectState& st, std::uint64_t object_id, double t) {
  if (st.pending_len == 0) return t;
  const double service =
      disk_.access(object_id, st.pending_start, st.pending_len) * perturb_.disk_factor;
  st.pending_len = 0;
  return disk_res_.reserve(t, service);
}

double Oss::rmw_charge(std::uint64_t object_id, std::uint64_t off, double t) {
  // Unaligned write into a cold region: read the containing RAID/block
  // unit before it can be modified.
  const std::uint64_t unit_start = off / cfg_.rmw_unit * cfg_.rmw_unit;
  const double service =
      disk_.access(object_id, unit_start, cfg_.rmw_unit) * perturb_.disk_factor;
  return disk_res_.reserve(t, service);
}

double Oss::serve_write(std::uint64_t object_id, std::uint64_t off,
                        std::uint64_t len, double now) {
  double t = now + cfg_.rpc_latency_s;
  t = cpu_res_.reserve(t, (cfg_.server_cpu_per_op_s + cfg_.security_verify_s) *
                              perturb_.cpu_factor);
  t = nic_res_.reserve(
      t, static_cast<double>(len) / cfg_.net_bw_bytes * perturb_.net_factor);

  ObjectState& st = objects_[object_id];
  st.size = std::max(st.size, off + len);
  const bool extends =
      st.pending_len > 0 && off == st.pending_start + st.pending_len;
  if (extends) {
    st.pending_len += len;
  } else {
    // A discontiguous arrival evicts the previous run (small flush) —
    // this is what shreds interleaved strided writes to a shared object.
    t = flush_pending(st, object_id, t);
    if (cfg_.rmw_on_unaligned && off % cfg_.rmw_unit != 0) {
      t = rmw_charge(object_id, off, t);
    }
    st.pending_start = off;
    st.pending_len = len;
  }
  if (st.pending_len >= cfg_.flush_chunk) {
    t = flush_pending(st, object_id, t);
    st.pending_start = off + len;
  }
  record(now, t, len);
  return t;
}

double Oss::serve_read(std::uint64_t object_id, std::uint64_t off,
                       std::uint64_t len, double now) {
  double t = now + cfg_.rpc_latency_s;
  t = cpu_res_.reserve(t, (cfg_.server_cpu_per_op_s + cfg_.security_verify_s) *
                              perturb_.cpu_factor);

  ObjectState& st = objects_[object_id];
  const bool hit =
      st.ra_len > 0 && off >= st.ra_start && off + len <= st.ra_start + st.ra_len;
  if (!hit) {
    // Fetch a readahead window starting at the request, clamped to the
    // object's stored size (no point prefetching past EOF). Dirty pending
    // data must reach disk first so the read observes it.
    t = flush_pending(st, object_id, t);
    std::uint64_t window = std::max<std::uint64_t>(len, cfg_.flush_chunk);
    if (st.size > off) window = std::min(window, st.size - off);
    window = std::max(window, len);
    const double service =
        disk_.access(object_id, off, window) * perturb_.disk_factor;
    t = disk_res_.reserve(t, service);
    st.ra_start = off;
    st.ra_len = window;
  }
  t = nic_res_.reserve(
      t, static_cast<double>(len) / cfg_.net_bw_bytes * perturb_.net_factor);
  record(now, t, len);
  return t;
}

double Oss::serve_small_op(double now) {
  double t = now + cfg_.rpc_latency_s;
  t = cpu_res_.reserve(t, cfg_.server_cpu_per_op_s * perturb_.cpu_factor);
  record(now, t, 0);
  return t;
}

double Oss::flush(std::uint64_t object_id, double now) {
  auto it = objects_.find(object_id);
  if (it == objects_.end()) return now;
  return flush_pending(it->second, object_id, now);
}

void Oss::forget(std::uint64_t object_id) { objects_.erase(object_id); }

OssMetrics Oss::drain_metrics() {
  OssMetrics out = metrics_;
  metrics_ = OssMetrics{};
  return out;
}

}  // namespace pdsi::pfs
