#include "pdsi/pfs/oss.h"

#include <algorithm>

#include "pdsi/fault/fault.h"

namespace pdsi::pfs {

Oss::Oss(const PfsConfig& cfg, std::uint32_t index, obs::Context* ctx)
    : cfg_(cfg), index_(index), disk_(cfg.disk), ctx_(ctx) {
  if (ctx_ && ctx_->registry) {
    auto& r = *ctx_->registry;
    c_bytes_written_ = &r.counter("oss.bytes_written");
    c_bytes_read_ = &r.counter("oss.bytes_read");
    c_ops_ = &r.counter("oss.ops");
    g_seek_s_ = &r.gauge("oss.seek_seconds");
    g_transfer_s_ = &r.gauge("oss.transfer_seconds");
    h_write_lat_ = &r.histogram("oss.write_latency_s", obs::LatencyBuckets());
    h_read_lat_ = &r.histogram("oss.read_latency_s", obs::LatencyBuckets());
  }
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->track(obs::kOssTrackBase + index_, "oss" + std::to_string(index_));
  }
}

void Oss::record(double start, double end, std::uint64_t len) {
  ++metrics_.ops;
  metrics_.bytes += len;
  metrics_.latency.add(end - start);
  if (ctx_ && c_ops_) c_ops_->add(1);
}

void Oss::maybe_crash_reset(double now) {
  if (!fault_) return;
  if (fault_->crashes_between(index_, fault_checked_, now) > 0) {
    // The restarted server lost volatile state: dirty write-back runs and
    // readahead windows. Object sizes survive — the extent map is on disk
    // (and payload integrity lives in the cluster-level SparseBuffer).
    for (auto& kv : objects_) {
      kv.second.pending_len = 0;
      kv.second.ra_len = 0;
    }
  }
  fault_checked_ = std::max(fault_checked_, now);
}

double Oss::disk_charge(std::uint64_t object_id, std::uint64_t off,
                        std::uint64_t len, double t, const char* what) {
  const double dfac =
      perturb_.disk_factor * (fault_ ? fault_->disk_factor(index_) : 1.0);
  const double service = disk_.access(object_id, off, len) * dfac;
  const double done = disk_res_.reserve(t, service);
  if (ctx_) {
    // Seek-vs-transfer attribution: streaming time is the irreducible
    // part, everything above it is head positioning (the quantity PLFS
    // exists to eliminate).
    const double transfer =
        std::min(service, disk_.stream_time(len) * dfac);
    if (g_transfer_s_) g_transfer_s_->add(transfer);
    if (g_seek_s_) g_seek_s_->add(service - transfer);
    if (ctx_->tracer) {
      ctx_->tracer->complete(obs::kOssTrackBase + index_, what, "disk",
                             done - service, done,
                             {obs::Arg::Int("obj", object_id),
                              obs::Arg::Int("len", len),
                              obs::Arg::Num("seek_s", service - transfer)});
    }
  }
  return done;
}

double Oss::flush_pending(ObjectState& st, std::uint64_t object_id, double t) {
  if (st.pending_len == 0) return t;
  const std::uint64_t len = st.pending_len;
  st.pending_len = 0;
  return disk_charge(object_id, st.pending_start, len, t, "flush");
}

double Oss::rmw_charge(std::uint64_t object_id, std::uint64_t off, double t) {
  // Unaligned write into a cold region: read the containing RAID/block
  // unit before it can be modified.
  const std::uint64_t unit_start = off / cfg_.rmw_unit * cfg_.rmw_unit;
  return disk_charge(object_id, unit_start, cfg_.rmw_unit, t, "rmw");
}

double Oss::serve_write(std::uint64_t object_id, std::uint64_t off,
                        std::uint64_t len, double now, bool charge_rpc,
                        std::uint64_t req) {
  maybe_crash_reset(now);
  const double disk_q = ctx_ ? std::max(0.0, disk_res_.free_at() - now) : 0.0;
  double t = charge_rpc ? now + cfg_.rpc_latency_s : now;
  t = cpu_res_.reserve(t, (cfg_.server_cpu_per_op_s + cfg_.security_verify_s) *
                              perturb_.cpu_factor);
  t = nic_res_.reserve(
      t, static_cast<double>(len) / cfg_.net_bw_bytes * perturb_.net_factor);

  ObjectState& st = objects_[object_id];
  st.size = std::max(st.size, off + len);
  // An overlapping write invalidates the readahead window: the cached
  // pages no longer match what a subsequent read must observe, so only
  // the untouched prefix may keep serving hits.
  if (st.ra_len > 0 && off < st.ra_start + st.ra_len && off + len > st.ra_start) {
    st.ra_len = off > st.ra_start ? off - st.ra_start : 0;
  }
  const bool extends =
      st.pending_len > 0 && off == st.pending_start + st.pending_len;
  if (extends) {
    st.pending_len += len;
  } else {
    // A discontiguous arrival evicts the previous run (small flush) —
    // this is what shreds interleaved strided writes to a shared object.
    t = flush_pending(st, object_id, t);
    if (cfg_.rmw_on_unaligned && off % cfg_.rmw_unit != 0) {
      t = rmw_charge(object_id, off, t);
    }
    st.pending_start = off;
    st.pending_len = len;
  }
  if (st.pending_len >= cfg_.flush_chunk) {
    t = flush_pending(st, object_id, t);
    st.pending_start = off + len;
  }
  record(now, t, len);
  if (ctx_) {
    if (c_bytes_written_) c_bytes_written_->add(len);
    if (h_write_lat_) h_write_lat_->add(t - now);
    if (ctx_->tracer) {
      // The req arg ties the span to the client's causal id — emitted
      // only for monitored runs so unmonitored traces stay identical.
      if (req != 0 && ctx_->tracer->has_subscribers()) {
        ctx_->tracer->complete(obs::kOssTrackBase + index_, "write", "oss", now,
                               t,
                               {obs::Arg::Int("obj", object_id),
                                obs::Arg::Int("off", off),
                                obs::Arg::Int("len", len),
                                obs::Arg::Num("disk_q_s", disk_q),
                                obs::Arg::Int("req", req)});
      } else {
        ctx_->tracer->complete(obs::kOssTrackBase + index_, "write", "oss", now,
                               t,
                               {obs::Arg::Int("obj", object_id),
                                obs::Arg::Int("off", off),
                                obs::Arg::Int("len", len),
                                obs::Arg::Num("disk_q_s", disk_q)});
      }
    }
  }
  return t;
}

double Oss::serve_read(std::uint64_t object_id, std::uint64_t off,
                       std::uint64_t len, double now, bool charge_rpc,
                       std::uint64_t req) {
  maybe_crash_reset(now);
  const double disk_q = ctx_ ? std::max(0.0, disk_res_.free_at() - now) : 0.0;
  double t = charge_rpc ? now + cfg_.rpc_latency_s : now;
  t = cpu_res_.reserve(t, (cfg_.server_cpu_per_op_s + cfg_.security_verify_s) *
                              perturb_.cpu_factor);

  ObjectState& st = objects_[object_id];
  const bool hit =
      st.ra_len > 0 && off >= st.ra_start && off + len <= st.ra_start + st.ra_len;
  if (!hit && off >= st.size) {
    // Hole on this server: nothing is stored at or beyond `off` (the
    // client clamps against the MDS size, which spans all stripes), so
    // the extent map answers without disk I/O and no readahead window is
    // installed — previously this charged a full flush_chunk transfer
    // for data that was never written.
  } else if (!hit) {
    // Fetch a readahead window starting at the request, clamped to the
    // object's stored size (no point prefetching past EOF). Dirty pending
    // data must reach disk first so the read observes it.
    t = flush_pending(st, object_id, t);
    std::uint64_t window = std::max<std::uint64_t>(len, cfg_.flush_chunk);
    window = std::min(window, st.size - off);
    window = std::max(window, len);
    t = disk_charge(object_id, off, window, t, "readahead");
    st.ra_start = off;
    st.ra_len = window;
  }
  t = nic_res_.reserve(
      t, static_cast<double>(len) / cfg_.net_bw_bytes * perturb_.net_factor);
  record(now, t, len);
  if (ctx_) {
    if (c_bytes_read_) c_bytes_read_->add(len);
    if (h_read_lat_) h_read_lat_->add(t - now);
    if (ctx_->tracer) {
      if (req != 0 && ctx_->tracer->has_subscribers()) {
        ctx_->tracer->complete(obs::kOssTrackBase + index_, "read", "oss", now,
                               t,
                               {obs::Arg::Int("obj", object_id),
                                obs::Arg::Int("off", off),
                                obs::Arg::Int("len", len),
                                obs::Arg::Num("disk_q_s", disk_q),
                                obs::Arg::Int("req", req)});
      } else {
        ctx_->tracer->complete(obs::kOssTrackBase + index_, "read", "oss", now,
                               t,
                               {obs::Arg::Int("obj", object_id),
                                obs::Arg::Int("off", off),
                                obs::Arg::Int("len", len),
                                obs::Arg::Num("disk_q_s", disk_q)});
      }
    }
  }
  return t;
}

double Oss::serve_failover_read(std::uint64_t object_id, std::uint64_t off,
                                std::uint64_t len, double now,
                                std::uint64_t req) {
  maybe_crash_reset(now);
  double t = now + cfg_.rpc_latency_s;
  t = cpu_res_.reserve(t, (cfg_.server_cpu_per_op_s + cfg_.security_verify_s) *
                              perturb_.cpu_factor);
  // Always a cold disk read: the replica copy's cache is not modelled and
  // this server's own readahead window must not be disturbed.
  t = disk_charge(object_id, off, len, t, "failover_read");
  t = nic_res_.reserve(
      t, static_cast<double>(len) / cfg_.net_bw_bytes * perturb_.net_factor);
  record(now, t, len);
  if (ctx_) {
    if (c_bytes_read_) c_bytes_read_->add(len);
    if (h_read_lat_) h_read_lat_->add(t - now);
    if (ctx_->tracer) {
      if (req != 0 && ctx_->tracer->has_subscribers()) {
        ctx_->tracer->complete(obs::kOssTrackBase + index_, "failover_read",
                               "oss", now, t,
                               {obs::Arg::Int("obj", object_id),
                                obs::Arg::Int("off", off),
                                obs::Arg::Int("len", len),
                                obs::Arg::Int("req", req)});
      } else {
        ctx_->tracer->complete(obs::kOssTrackBase + index_, "failover_read",
                               "oss", now, t,
                               {obs::Arg::Int("obj", object_id),
                                obs::Arg::Int("off", off),
                                obs::Arg::Int("len", len)});
      }
    }
  }
  return t;
}

double Oss::serve_small_op(double now, std::uint64_t req) {
  maybe_crash_reset(now);
  double t = now + cfg_.rpc_latency_s;
  t = cpu_res_.reserve(t, cfg_.server_cpu_per_op_s * perturb_.cpu_factor);
  record(now, t, 0);
  if (ctx_ && ctx_->tracer) {
    if (req != 0 && ctx_->tracer->has_subscribers()) {
      ctx_->tracer->complete(obs::kOssTrackBase + index_, "small_op", "oss",
                             now, t, {obs::Arg::Int("req", req)});
    } else {
      ctx_->tracer->complete(obs::kOssTrackBase + index_, "small_op", "oss",
                             now, t);
    }
  }
  return t;
}

double Oss::flush(std::uint64_t object_id, double now) {
  maybe_crash_reset(now);
  auto it = objects_.find(object_id);
  if (it == objects_.end()) return now;
  return flush_pending(it->second, object_id, now);
}

void Oss::forget(std::uint64_t object_id) { objects_.erase(object_id); }

OssMetrics Oss::drain_metrics() {
  OssMetrics out = metrics_;
  metrics_ = OssMetrics{};
  return out;
}

}  // namespace pdsi::pfs
