#include "pdsi/dsfs/dsfs.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "pdsi/common/rng.h"
#include "pdsi/sim/event_queue.h"
#include "pdsi/sim/virtual_time.h"
#include "pdsi/storage/disk_model.h"

namespace pdsi::dsfs {

double GrepJobResult::aggregate_bandwidth() const {
  return runtime_s > 0 ? static_cast<double>(total_bytes) / runtime_s : 0.0;
}

namespace {

struct Node {
  storage::DiskModel disk;
  sim::SimResource disk_res;
  sim::SimResource nic_res;
  std::uint32_t free_slots;

  explicit Node(const storage::DiskParams& d, std::uint32_t slots)
      : disk(d), free_slots(slots) {}
};

class GrepSim {
 public:
  explicit GrepSim(const GrepJobParams& p) : p_(p), rng_(p.seed) {
    nodes_.reserve(p_.nodes);
    for (std::uint32_t n = 0; n < p_.nodes; ++n) {
      nodes_.emplace_back(p_.disk, p_.map_slots_per_node);
    }
    // Replica placement: each block on `replication` distinct nodes.
    replicas_.resize(p_.blocks);
    for (std::uint32_t b = 0; b < p_.blocks; ++b) {
      std::vector<std::uint32_t> nodes(p_.nodes);
      for (std::uint32_t n = 0; n < p_.nodes; ++n) nodes[n] = n;
      rng_.shuffle(nodes);
      replicas_[b].assign(nodes.begin(),
                          nodes.begin() + std::min<std::size_t>(p_.replication, p_.nodes));
      pending_.push_back(b);
    }
  }

  GrepJobResult run() {
    for (std::uint32_t n = 0; n < p_.nodes; ++n) schedule_on(n);
    queue_.run(100'000'000ULL);
    result_.runtime_s = finish_;
    result_.total_bytes =
        static_cast<std::uint64_t>(p_.blocks) * p_.block_bytes;
    return result_;
  }

 private:
  bool is_replica(std::uint32_t block, std::uint32_t node) const {
    const auto& r = replicas_[block];
    return std::find(r.begin(), r.end(), node) != r.end();
  }

  /// Picks the next task for a free slot on `node`; locality preference
  /// when the scheduler can see the layout.
  bool pick_task(std::uint32_t node, std::uint32_t& block, bool& local) {
    if (pending_.empty()) return false;
    if (p_.locality_aware) {
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (is_replica(*it, node)) {
          block = *it;
          local = true;
          pending_.erase(it);
          return true;
        }
      }
    }
    block = pending_.front();
    pending_.pop_front();
    local = is_replica(block, node);
    return true;
  }

  void schedule_on(std::uint32_t node) {
    Node& n = nodes_[node];
    while (n.free_slots > 0) {
      std::uint32_t block;
      bool local;
      if (!pick_task(node, block, local)) return;
      --n.free_slots;
      launch(node, block, local);
    }
  }

  void launch(std::uint32_t node, std::uint32_t block, bool local) {
    Node& n = nodes_[node];
    const double start = queue_.now() + p_.task_overhead_s;

    // Source node for the data.
    std::uint32_t src = node;
    if (!local) {
      const auto& r = replicas_[block];
      src = r[rng_.below(r.size())];
    }
    Node& s = nodes_[src];

    // Read the block in read_unit chunks from the source disk; remote
    // reads cross both NICs. Pipelined mode (readahead) keeps all stages
    // overlapped; synchronous mode serialises RPC + disk + wire per unit.
    double t = start;
    const std::uint64_t object = 777000 + block;
    std::uint64_t off = 0;
    double issue = start;
    // The source node's kernel prefetches sequential files in large units
    // regardless of the client's read size (server-side OS readahead).
    constexpr std::uint64_t kServerPrefetch = 2 * 1024 * 1024;
    std::uint64_t prefetched = 0;
    auto disk_read = [&](std::uint64_t at, std::uint64_t len, double when) {
      if (at + len <= prefetched) return when;  // served from page cache
      const std::uint64_t plen =
          std::min(std::max(len, kServerPrefetch), p_.block_bytes - at);
      const double service = s.disk.access(object, at, plen);
      prefetched = at + plen;
      return s.disk_res.reserve(when, service);
    };
    while (off < p_.block_bytes) {
      const std::uint64_t len = std::min(p_.read_unit, p_.block_bytes - off);
      const double wire = static_cast<double>(len) / p_.nic_bw_bytes;
      const double scan = static_cast<double>(len) / p_.scan_bw_bytes;
      if (p_.pipelined_reads) {
        // Stages overlap: each chunk queues on the disk as soon as the
        // previous chunk left it, flows through the NICs, and the task
        // completes at the latest stage.
        const double disk_done = disk_read(off, len, issue);
        issue = disk_done;
        double ready = disk_done;
        if (!local) {
          ready = s.nic_res.reserve(ready, wire);
          ready = n.nic_res.reserve(ready, wire);
        }
        t = std::max(ready, t + scan);
      } else {
        // Synchronous read(): RPC round trip, then disk, then wires, then
        // scan — nothing overlaps.
        double ready = disk_read(off, len, t + p_.rpc_latency_s);
        if (!local) {
          ready = s.nic_res.reserve(ready, wire);
          ready = n.nic_res.reserve(ready, wire);
        }
        t = ready + scan;
      }
      off += len;
    }

    if (local) {
      ++result_.local_tasks;
    } else {
      ++result_.remote_tasks;
    }
    queue_.at(t, [this, node] {
      finish_ = std::max(finish_, queue_.now());
      ++nodes_[node].free_slots;
      schedule_on(node);
    });
  }

  GrepJobParams p_;
  Rng rng_;
  sim::EventQueue queue_;
  std::vector<Node> nodes_;
  std::vector<std::vector<std::uint32_t>> replicas_;
  std::deque<std::uint32_t> pending_;
  GrepJobResult result_;
  double finish_ = 0.0;
};

}  // namespace

GrepJobResult RunGrepJob(const GrepJobParams& params) {
  return GrepSim(params).run();
}

GrepJobParams NativeHdfs(std::uint32_t nodes) {
  GrepJobParams p;
  p.nodes = nodes;
  p.read_unit = 4 * 1024 * 1024;  // HDFS streams in large packets
  p.locality_aware = true;
  return p;
}

GrepJobParams NaivePvfsShim(std::uint32_t nodes) {
  GrepJobParams p;
  p.nodes = nodes;
  p.read_unit = 512 * 1024;  // Hadoop-side buffer only, no shim readahead
  p.pipelined_reads = false; // synchronous read() round trips
  p.locality_aware = false;  // layout hidden from the scheduler
  return p;
}

GrepJobParams ReadaheadPvfsShim(std::uint32_t nodes) {
  GrepJobParams p = NaivePvfsShim(nodes);
  p.read_unit = 4 * 1024 * 1024;  // shim readahead like the stdio layers
  p.pipelined_reads = true;       // buffers ahead of the consumer
  return p;
}

GrepJobParams LayoutExposedPvfsShim(std::uint32_t nodes) {
  GrepJobParams p = ReadaheadPvfsShim(nodes);
  p.locality_aware = true;  // replica addresses from extended attributes
  return p;
}

}  // namespace pdsi::dsfs
