// Data-intensive (cloud) file system experiments (§4.2.7, Fig. 12;
// Tantisiriroj CMU-PDL-08-114).
//
// CMU replaced HDFS under Hadoop with PVFS through a small shim. The
// naive shim ran a large text search more than twice as slowly as native
// Hadoop-on-HDFS; tuning the shim's readahead recovered most of it, and
// exposing PVFS's layout (replica locations) to Hadoop's scheduler — so
// map tasks run where their data lives — reached parity.
//
// The model: a cluster of combined compute/storage nodes runs a
// map-scan ("grep") over a replicated block set. Three knobs distinguish
// the configurations: whether reads are buffered in large units
// (readahead), whether the task scheduler knows replica locations
// (layout exposure), and the replication factor.
#pragma once

#include <cstdint>
#include <string>

#include "pdsi/storage/device_catalog.h"

namespace pdsi::dsfs {

struct GrepJobParams {
  std::uint32_t nodes = 16;
  std::uint32_t map_slots_per_node = 2;
  std::uint32_t blocks = 192;
  std::uint64_t block_bytes = 16 * 1024 * 1024;  ///< scaled-down 64 MiB blocks
  std::uint32_t replication = 3;
  storage::DiskParams disk = storage::ReferenceSataDisk();
  double nic_bw_bytes = 117e6;      ///< 1GE
  double scan_bw_bytes = 400e6;     ///< grep compute rate per task
  double task_overhead_s = 0.05;    ///< JVM/task-launch cost

  // Shim behaviour.
  std::uint64_t read_unit = 4 * 1024 * 1024;  ///< readahead granularity
  /// Readahead keeps requests in flight so disk, network and scan overlap;
  /// the naive shim's synchronous read() serialises the whole chain per
  /// unit and pays an RPC round trip each time.
  bool pipelined_reads = true;
  double rpc_latency_s = 0.3e-3;
  bool locality_aware = true;                 ///< scheduler sees layout
  std::uint64_t seed = 1;
};

struct GrepJobResult {
  double runtime_s = 0.0;
  std::uint64_t local_tasks = 0;
  std::uint64_t remote_tasks = 0;
  double aggregate_bandwidth() const;
  std::uint64_t total_bytes = 0;
};

/// Runs the grep job to completion and reports runtime + locality mix.
GrepJobResult RunGrepJob(const GrepJobParams& params);

/// Canonical Fig. 12 configurations.
GrepJobParams NativeHdfs(std::uint32_t nodes);
GrepJobParams NaivePvfsShim(std::uint32_t nodes);   ///< tiny reads, no layout
GrepJobParams ReadaheadPvfsShim(std::uint32_t nodes);  ///< tuned buffers
GrepJobParams LayoutExposedPvfsShim(std::uint32_t nodes);  ///< full parity

}  // namespace pdsi::dsfs
