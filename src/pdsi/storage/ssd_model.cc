#include "pdsi/storage/ssd_model.h"

#include <cassert>
#include <stdexcept>

namespace pdsi::storage {

SsdModel::SsdModel(SsdParams params) : params_(params) {
  if (params_.page_bytes == 0 || params_.pages_per_block == 0 ||
      params_.channels == 0) {
    throw std::invalid_argument("SsdModel: degenerate geometry");
  }
  logical_pages_ = params_.capacity_bytes / params_.page_bytes;
  std::uint64_t physical =
      static_cast<std::uint64_t>(static_cast<double>(logical_pages_) *
                                 (1.0 + params_.over_provision));
  // Round physical space up to whole blocks, with at least one spare block
  // so GC always has somewhere to relocate into.
  const std::uint64_t bpb = params_.pages_per_block;
  std::uint64_t num_blocks = (physical + bpb - 1) / bpb;
  if (num_blocks < logical_pages_ / bpb + 2) num_blocks = logical_pages_ / bpb + 2;
  physical_pages_ = num_blocks * bpb;
  free_pages_ = physical_pages_;

  blocks_.resize(num_blocks);
  map_.assign(logical_pages_, kUnmapped);
  reverse_.assign(physical_pages_, kUnmapped);
  free_blocks_.reserve(num_blocks);
  for (std::uint32_t b = static_cast<std::uint32_t>(num_blocks); b-- > 1;) {
    free_blocks_.push_back(b);
  }
  active_block_ = 0;
}

double SsdModel::page_read_cost(std::uint64_t pages) const {
  const std::uint64_t waves = (pages + params_.channels - 1) / params_.channels;
  return static_cast<double>(waves) * params_.read_page_us * 1e-6;
}

double SsdModel::page_write_cost(std::uint64_t pages) const {
  const std::uint64_t waves = (pages + params_.channels - 1) / params_.channels;
  return static_cast<double>(waves) * params_.program_page_us * 1e-6;
}

double SsdModel::read(std::uint64_t off, std::uint64_t len) {
  if (len == 0) return 0.0;
  const std::uint64_t first = off / params_.page_bytes;
  const std::uint64_t last = (off + len - 1) / params_.page_bytes;
  if (last >= logical_pages_) throw std::out_of_range("SsdModel::read past capacity");
  const std::uint64_t n = last - first + 1;
  ++stats_.host_reads;
  stats_.pages_read += n;
  double media = page_read_cost(n);
  if (params_.interface_read_bw > 0.0) {
    const double wire = static_cast<double>(len) / params_.interface_read_bw;
    if (wire > media) media = wire;
  }
  return params_.cmd_overhead_us * 1e-6 + media;
}

std::uint32_t SsdModel::allocate_physical_page() {
  Block& active = blocks_[active_block_];
  if (active.next_page == params_.pages_per_block) {
    if (free_blocks_.empty()) {
      throw std::logic_error("SsdModel: out of erased blocks (GC invariant broken)");
    }
    active_block_ = free_blocks_.back();
    free_blocks_.pop_back();
  }
  Block& blk = blocks_[active_block_];
  const std::uint32_t ppn =
      active_block_ * params_.pages_per_block + blk.next_page;
  ++blk.next_page;
  --free_pages_;
  return ppn;
}

void SsdModel::program_page(std::uint64_t lpn) {
  const std::uint32_t old = map_[lpn];
  if (old != kUnmapped) {
    Block& ob = blocks_[old / params_.pages_per_block];
    assert(ob.valid > 0);
    --ob.valid;
    reverse_[old] = kUnmapped;
  }
  const std::uint32_t ppn = allocate_physical_page();
  map_[lpn] = ppn;
  reverse_[ppn] = static_cast<std::uint32_t>(lpn);
  ++blocks_[ppn / params_.pages_per_block].valid;
  ++stats_.pages_programmed;
}

double SsdModel::collect_one_block() {
  // Victim selection: least-valid full block, either exhaustively or among
  // a deterministic pseudo-random sample (d-choices).
  std::uint32_t victim = kUnmapped;
  std::uint32_t best_valid = params_.pages_per_block + 1;
  auto consider = [&](std::uint32_t b) {
    if (b == active_block_) return;
    const Block& blk = blocks_[b];
    if (blk.next_page < params_.pages_per_block) return;  // not yet full
    if (blk.valid < best_valid) {
      best_valid = blk.valid;
      victim = b;
    }
  };
  if (params_.gc_sample == 0 || params_.gc_sample >= blocks_.size()) {
    for (std::uint32_t b = 0; b < blocks_.size(); ++b) consider(b);
  } else {
    for (std::uint32_t i = 0; i < params_.gc_sample; ++i) {
      gc_cursor_ = gc_cursor_ * 6364136223846793005ULL + 1442695040888963407ULL;
      consider(static_cast<std::uint32_t>((gc_cursor_ >> 33) % blocks_.size()));
    }
    if (victim == kUnmapped) {
      // Sample found nothing reclaimable; fall back to exhaustive scan.
      for (std::uint32_t b = 0; b < blocks_.size(); ++b) consider(b);
    }
  }
  if (victim == kUnmapped || best_valid >= params_.pages_per_block) {
    return -1.0;  // nothing reclaimable
  }

  double t = 0.0;
  const std::uint64_t base =
      static_cast<std::uint64_t>(victim) * params_.pages_per_block;
  for (std::uint32_t p = 0; p < params_.pages_per_block; ++p) {
    const std::uint32_t lpn = reverse_[base + p];
    if (lpn == kUnmapped) continue;
    // Relocate the still-valid page.
    t += page_read_cost(1);
    program_page(lpn);
    t += page_write_cost(1);
    ++stats_.relocations;
    ++stats_.pages_read;
  }
  Block& blk = blocks_[victim];
  assert(blk.valid == 0);
  blk.next_page = 0;
  ++blk.erase_count;
  ++stats_.erases;
  free_pages_ += params_.pages_per_block;
  free_blocks_.push_back(victim);
  t += params_.erase_block_ms * 1e-3;
  return t;
}

double SsdModel::collect_garbage() {
  double t = 0.0;
  const double target = 1.5 * params_.gc_low_watermark;
  while (free_fraction() < target) {
    const double dt = collect_one_block();
    if (dt < 0.0) break;
    t += dt;
  }
  return t;
}

double SsdModel::write(std::uint64_t off, std::uint64_t len) {
  if (len == 0) return 0.0;
  const std::uint64_t first = off / params_.page_bytes;
  const std::uint64_t last = (off + len - 1) / params_.page_bytes;
  if (last >= logical_pages_) throw std::out_of_range("SsdModel::write past capacity");
  const std::uint64_t n = last - first + 1;
  ++stats_.host_writes;

  double t = params_.cmd_overhead_us * 1e-6;
  if (has_write_position_ && first != last_write_end_lpn_) {
    t += params_.random_write_penalty_us * 1e-6;
  }
  has_write_position_ = true;
  last_write_end_lpn_ = last + 1;

  if (free_fraction() < params_.gc_low_watermark) {
    t += collect_garbage();
  }
  // Hard floor: never program into the last erased block.
  while (free_pages_ < n + params_.pages_per_block) {
    const double dt = collect_one_block();
    if (dt < 0.0) throw std::logic_error("SsdModel: device wedged (no reclaimable space)");
    t += dt;
  }
  for (std::uint64_t lpn = first; lpn <= last; ++lpn) program_page(lpn);
  double media = page_write_cost(n);
  if (params_.interface_write_bw > 0.0) {
    const double wire = static_cast<double>(len) / params_.interface_write_bw;
    if (wire > media) media = wire;
  }
  t += media;
  return t;
}

void SsdModel::idle(double seconds) {
  // Background grooming: spend idle time re-erasing most of the
  // over-provisioned space so the next burst starts from a full pool.
  const double target = 0.9 * params_.over_provision / (1.0 + params_.over_provision);
  double budget = seconds;
  while (budget > 0.0 && free_fraction() < target) {
    const double dt = collect_one_block();
    if (dt < 0.0) break;
    budget -= dt;
  }
}

}  // namespace pdsi::storage
