// Named device parameter sets.
//
// The flash entries are calibrated to Table 1 of the PDSI final report
// (NERSC flash evaluation): two SATA consumer drives with hybrid FTLs and
// three PCIe devices with page-mapped FTLs. Capacities are scaled down
// (GiB-class instead of the products' 64-320 GB) so FTL simulations run in
// seconds; capacity scaling changes the *duration* of the fresh-device
// honeymoon, not the steady-state IOPS levels the table reports.
#pragma once

#include <string_view>
#include <vector>

#include "pdsi/storage/disk_model.h"
#include "pdsi/storage/ssd_model.h"

namespace pdsi::storage {

/// The reference "regular spinning disk" of the report: ~80 MB/s and
/// ~90 IOPS for both read and write.
DiskParams ReferenceSataDisk();

/// A faster enterprise disk used for parallel-file-system servers.
DiskParams EnterpriseFcDisk();

/// Table 1 devices by name. Valid names:
///   "intel-x25m", "ocz-colossus", "fusionio-iodrive-duo",
///   "tms-ramsan20", "virident-tachion".
/// Throws std::out_of_range for unknown names.
SsdParams FlashDevice(std::string_view name);

/// All Table 1 devices in the row order the paper prints.
std::vector<SsdParams> AllFlashDevices();

}  // namespace pdsi::storage
