#include "pdsi/storage/device_catalog.h"

#include <stdexcept>
#include <string>

#include "pdsi/common/units.h"

namespace pdsi::storage {

DiskParams ReferenceSataDisk() {
  DiskParams p;
  p.name = "reference-sata-hdd";
  p.seek_avg_s = 8.5e-3;
  p.seek_track_s = 1.0e-3;
  p.rpm = 7200.0;
  p.seq_bw_bytes = 80.0 * 1e6;  // ~80 MB/s, ~90 random IOPS
  p.per_request_s = 0.2e-3;
  p.capacity_bytes = 500ULL << 30;
  return p;
}

DiskParams EnterpriseFcDisk() {
  DiskParams p;
  p.name = "enterprise-fc-hdd";
  p.seek_avg_s = 3.8e-3;
  p.seek_track_s = 0.4e-3;
  p.rpm = 15000.0;
  p.seq_bw_bytes = 120.0 * 1e6;
  p.per_request_s = 0.1e-3;
  p.capacity_bytes = 300ULL << 30;
  return p;
}

SsdParams FlashDevice(std::string_view name) {
  SsdParams p;
  p.page_bytes = 4096;
  p.pages_per_block = 128;
  p.erase_block_ms = 1.5;

  if (name == "intel-x25m") {
    // 200/100 MB/s, 19.1K/1.49K 4K IOPS. Hybrid FTL: big random-write
    // penalty; SATA cap on sequential reads.
    p.name = "Intel X25-M (SATA)";
    p.capacity_bytes = 1ULL << 30;
    p.over_provision = 0.07;
    p.channels = 8;
    p.read_page_us = 42.0;
    p.program_page_us = 320.0;
    p.cmd_overhead_us = 10.0;
    p.interface_read_bw = 200.0 * 1e6;
    p.interface_write_bw = 100.0 * 1e6;
    p.random_write_penalty_us = 330.0;
  } else if (name == "ocz-colossus") {
    // 200/200 MB/s, 5.21K/1.85K IOPS: slow random reads (RAID-0 of
    // barefoot controllers), hybrid FTL writes.
    p.name = "OCZ Colossus (SATA)";
    p.capacity_bytes = 1ULL << 30;
    p.over_provision = 0.07;
    p.channels = 8;
    p.read_page_us = 172.0;
    p.program_page_us = 160.0;
    p.cmd_overhead_us = 20.0;
    p.interface_read_bw = 200.0 * 1e6;
    p.interface_write_bw = 200.0 * 1e6;
    p.random_write_penalty_us = 360.0;
  } else if (name == "fusionio-iodrive-duo") {
    // 800/690 MB/s, 107K/111K IOPS: page-mapped, generous OP.
    p.name = "FusionIO ioDrive Duo (PCIe-4x)";
    p.capacity_bytes = 2ULL << 30;
    p.over_provision = 0.25;
    p.channels = 24;
    p.read_page_us = 8.0;
    p.program_page_us = 7.6;
    p.cmd_overhead_us = 1.3;
    p.interface_read_bw = 800.0 * 1e6;
    p.interface_write_bw = 690.0 * 1e6;
    p.random_write_penalty_us = 0.0;
  } else if (name == "tms-ramsan20") {
    // 700/675 MB/s, 143K/156K IOPS.
    p.name = "Texas Memory Systems RamSan-20 (PCIe-4x)";
    p.capacity_bytes = 2ULL << 30;
    p.over_provision = 0.28;
    p.channels = 24;
    p.read_page_us = 6.0;
    p.program_page_us = 5.4;
    p.cmd_overhead_us = 1.0;
    p.interface_read_bw = 700.0 * 1e6;
    p.interface_write_bw = 675.0 * 1e6;
    p.random_write_penalty_us = 0.0;
  } else if (name == "virident-tachion") {
    // 1200/1200 MB/s, 156K/118K IOPS.
    p.name = "Virident tachION (PCIe-8x)";
    p.capacity_bytes = 2ULL << 30;
    p.over_provision = 0.30;
    p.channels = 32;
    p.read_page_us = 5.4;
    p.program_page_us = 7.5;
    p.cmd_overhead_us = 1.0;
    p.interface_read_bw = 1200.0 * 1e6;
    p.interface_write_bw = 1200.0 * 1e6;
    p.random_write_penalty_us = 0.0;
  } else {
    throw std::out_of_range("unknown flash device: " + std::string(name));
  }
  return p;
}

std::vector<SsdParams> AllFlashDevices() {
  return {FlashDevice("intel-x25m"), FlashDevice("ocz-colossus"),
          FlashDevice("fusionio-iodrive-duo"), FlashDevice("tms-ramsan20"),
          FlashDevice("virident-tachion")};
}

}  // namespace pdsi::storage
