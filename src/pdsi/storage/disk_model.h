// Rotating-disk service-time model.
//
// The PDSI result set leans on one mechanical asymmetry: a disk streams
// sequential data at ~50-100 MB/s but pays ~10 ms of head positioning for
// every discontiguous access. N-to-1 strided checkpoint writes (PLFS's
// target pathology), interleaved multi-job access (Argon), and metadata
// workloads all live or die by that asymmetry, so the model tracks the
// last accessed (object, offset) and charges positioning only on
// discontiguity.
#pragma once

#include <cstdint>
#include <string>

namespace pdsi::storage {

struct DiskParams {
  std::string name = "nearline-sata";
  double seek_avg_s = 8.5e-3;        ///< average seek
  double seek_track_s = 0.8e-3;      ///< settle for a near miss (same object)
  double rpm = 7200.0;               ///< rotational speed
  double seq_bw_bytes = 80.0 * 1024 * 1024;  ///< media streaming rate
  double per_request_s = 0.1e-3;     ///< controller / command overhead
  std::uint64_t capacity_bytes = 500ULL << 30;

  double rotational_latency_s() const { return 0.5 * 60.0 / rpm; }
};

class DiskModel {
 public:
  explicit DiskModel(DiskParams params = {}) : params_(params) {}

  const DiskParams& params() const { return params_; }

  /// Service time for accessing `len` bytes of object `object_id` at
  /// `offset`. Sequential continuation of the previous access streams at
  /// media rate; anything else pays seek + rotation. Writes and reads are
  /// symmetric at this fidelity.
  double access(std::uint64_t object_id, std::uint64_t offset, std::uint64_t len);

  /// Positioning-free streaming time for `len` bytes (used for idealised
  /// comparisons).
  double stream_time(std::uint64_t len) const {
    return static_cast<double>(len) / params_.seq_bw_bytes;
  }

  /// Forgets head position (e.g. after the disk is reassigned).
  void reset_position();

  std::uint64_t total_requests() const { return requests_; }
  std::uint64_t sequential_requests() const { return sequential_; }

 private:
  DiskParams params_;
  bool has_position_ = false;
  std::uint64_t last_object_ = 0;
  std::uint64_t last_end_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t sequential_ = 0;
};

}  // namespace pdsi::storage
