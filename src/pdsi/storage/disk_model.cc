#include "pdsi/storage/disk_model.h"

#include <algorithm>
#include <cmath>

namespace pdsi::storage {

double DiskModel::access(std::uint64_t object_id, std::uint64_t offset,
                         std::uint64_t len) {
  ++requests_;
  double positioning = 0.0;
  if (has_position_ && object_id == last_object_ && offset == last_end_) {
    // Sequential continuation: the head is already there.
    ++sequential_;
  } else if (has_position_ && object_id == last_object_) {
    // Same object: seek time grows roughly with the square root of the
    // byte distance (classic seek curve), from a track-to-track settle for
    // near misses up to a full average seek across the platter. A uniform
    // random workload over the whole device averages ~seek_avg.
    const std::uint64_t dist =
        offset > last_end_ ? offset - last_end_ : last_end_ - offset;
    const double frac = std::sqrt(std::min(
        1.0, static_cast<double>(dist) / (0.33 * static_cast<double>(params_.capacity_bytes))));
    positioning = params_.seek_track_s +
                  frac * (params_.seek_avg_s - params_.seek_track_s) +
                  params_.rotational_latency_s();
  } else {
    positioning = params_.seek_avg_s + params_.rotational_latency_s();
  }
  has_position_ = true;
  last_object_ = object_id;
  last_end_ = offset + len;
  return params_.per_request_s + positioning + stream_time(len);
}

void DiskModel::reset_position() { has_position_ = false; }

}  // namespace pdsi::storage
