// NAND-flash SSD model with an explicit flash translation layer.
//
// The report's flash findings (§4.2.6, Table 1, Figs. 11 & 14) are all
// FTL artifacts: random reads fly because there is no head; small random
// writes are slower than reads because pages must be programmed whole;
// and sustained random writing collapses roughly 10x once the pre-erased
// page pool is depleted and every host write drags garbage-collection
// relocations behind it. This model reproduces those mechanics directly:
// page-level mapping, greedy min-valid victim selection, background pool
// refill while idle, and channel-level parallelism.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pdsi::storage {

struct SsdParams {
  std::string name = "generic-mlc";
  std::uint64_t capacity_bytes = 2ULL << 30;   ///< host-visible capacity
  double over_provision = 0.12;                ///< extra physical space
  std::uint32_t page_bytes = 4096;
  std::uint32_t pages_per_block = 128;
  std::uint32_t channels = 4;                  ///< parallel flash dies
  double read_page_us = 60.0;                  ///< page read incl. bus
  double program_page_us = 220.0;              ///< page program incl. bus
  double erase_block_ms = 1.5;
  double cmd_overhead_us = 25.0;               ///< per-host-command cost
  /// Host interface ceilings (SATA vs PCIe); 0 means uncapped.
  double interface_read_bw = 0.0;
  double interface_write_bw = 0.0;
  /// Extra cost charged to a write command that is not sequential with the
  /// previous one. Models the merge work of the hybrid (block-mapped) FTLs
  /// in SATA-era drives; page-mapped PCIe devices set this to ~0.
  double random_write_penalty_us = 0.0;
  /// GC starts when the free-page fraction of physical space drops below
  /// this; it stops at 1.5x this level.
  double gc_low_watermark = 0.05;
  /// Victim selection: pick the least-valid block among this many sampled
  /// candidates ("d-choices"). 0 means exhaustive greedy. Real controllers
  /// sample; exhaustive greedy understates steady-state write
  /// amplification.
  std::uint32_t gc_sample = 16;
};

/// Cumulative counters for wear and amplification reporting.
struct SsdStats {
  std::uint64_t host_reads = 0;
  std::uint64_t host_writes = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pages_programmed = 0;     ///< host + relocation programs
  std::uint64_t relocations = 0;          ///< GC page copies
  std::uint64_t erases = 0;

  /// Pages programmed on behalf of the host (excludes GC relocations).
  std::uint64_t host_pages() const { return pages_programmed - relocations; }

  /// total programs / host programs. A fresh device (no programs at all)
  /// reports 1.0; programs with zero host pages — pure GC churn, e.g. a
  /// windowed delta taken across an idle-grooming pass — report infinity
  /// rather than masking pathological GC as 1.0.
  double write_amplification() const {
    if (host_pages() > 0) {
      return static_cast<double>(pages_programmed) /
             static_cast<double>(host_pages());
    }
    return pages_programmed == 0 ? 1.0
                                 : std::numeric_limits<double>::infinity();
  }
};

class SsdModel {
 public:
  explicit SsdModel(SsdParams params = {});

  const SsdParams& params() const { return params_; }
  const SsdStats& stats() const { return stats_; }

  std::uint64_t logical_pages() const { return logical_pages_; }

  /// Reads `len` bytes at logical byte offset `off`; returns service time.
  double read(std::uint64_t off, std::uint64_t len);

  /// Writes `len` bytes at logical byte offset `off`; returns service
  /// time including any synchronous garbage collection it triggered.
  double write(std::uint64_t off, std::uint64_t len);

  /// Credits `seconds` of host idle time to background garbage collection
  /// (models the drive "grooming" between bursts).
  void idle(double seconds);

  /// Current pre-erased pool as a fraction of physical pages.
  double free_fraction() const {
    return static_cast<double>(free_pages_) / static_cast<double>(physical_pages_);
  }

 private:
  static constexpr std::uint32_t kUnmapped = ~0u;

  struct Block {
    std::uint32_t valid = 0;       ///< live pages in this block
    std::uint32_t next_page = 0;   ///< next unwritten page slot
    std::uint32_t erase_count = 0;
  };

  double page_write_cost(std::uint64_t pages) const;
  double page_read_cost(std::uint64_t pages) const;

  /// Programs one logical page, invalidating any previous mapping.
  void program_page(std::uint64_t lpn);

  /// Runs greedy GC until the pool recovers to the high watermark;
  /// returns the time spent.
  double collect_garbage();

  /// Relocate + erase a single victim block; returns time spent, or a
  /// negative value if no victim is available.
  double collect_one_block();

  std::uint32_t allocate_physical_page();

  SsdParams params_;
  SsdStats stats_;
  std::uint64_t logical_pages_;
  std::uint64_t physical_pages_;
  std::uint64_t free_pages_;
  std::uint32_t active_block_;                 ///< block receiving programs
  std::uint64_t gc_cursor_ = 0x2545f4914f6cdd1dULL;  ///< victim-sampling LCG
  bool has_write_position_ = false;
  std::uint64_t last_write_end_lpn_ = 0;
  std::vector<Block> blocks_;
  std::vector<std::uint32_t> map_;             ///< lpn -> physical page
  std::vector<std::uint32_t> reverse_;         ///< physical page -> lpn
  std::vector<std::uint32_t> free_blocks_;     ///< fully erased blocks
};

}  // namespace pdsi::storage
