#include "pdsi/obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <utility>

#include "pdsi/obs/monitor.h"

namespace pdsi::obs {
namespace {

// Fixed-precision numeric formatting so exports are byte-stable: the same
// doubles always print the same characters.
std::string FmtFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// -- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::add(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_[i];
}

std::uint64_t Histogram::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t t = 0;
  for (std::uint64_t c : counts_) t += c;
  return t;
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counts_;
}

double Histogram::quantile(double q) const {
  const auto counts = this->counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [0, total]; the sample at that cumulative position is read
  // off the bucket's linear CDF segment.
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (rank <= next || i + 1 == counts.size()) {
      if (i == bounds_.size()) {
        // Overflow bucket: no upper edge to interpolate towards.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (rank - cum) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
    }
    cum = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

// -- Registry ----------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Histogram owns a mutex, so it must be built in place.
    it = histograms_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(std::move(upper_bounds)))
             .first;
  }
  return it->second;
}

void Registry::write_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << ' ' << FmtG(g.value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "hist " << name;
    const auto counts = h.counts();
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      os << " le" << FmtG(h.bounds()[i]) << '=' << counts[i];
    }
    os << " inf=" << counts.back() << '\n';
  }
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << EscapeJson(name) << "\": " << c.value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << EscapeJson(name) << "\": " << FmtG(g.value());
  }
  os << "}, \"hists\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << EscapeJson(name) << "\": {\"le\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ", ";
      os << FmtG(h.bounds()[i]);
    }
    os << "], \"counts\": [";
    const auto counts = h.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ", ";
      os << counts[i];
    }
    os << "]}";
  }
  os << "}}\n";
}

std::vector<double> LatencyBuckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0};
}

// -- Tracer ------------------------------------------------------------------

void Tracer::track(std::uint32_t id, const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  track_names_.emplace(id, name);
}

void Tracer::set_max_events(std::size_t cap) {
  std::lock_guard<std::mutex> lk(mu_);
  max_events_ = cap;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::bind_drop_counter(Counter* c) {
  std::lock_guard<std::mutex> lk(mu_);
  drop_counter_ = c;
}

void Tracer::push(std::uint32_t track, const char* name, const char* cat,
                  double ts, double dur, std::initializer_list<Arg> args) {
  Event e;
  e.ts = ts;
  e.dur = dur;
  e.track = track;
  e.name = name;
  e.cat = cat;
  e.nargs = 0;
  for (const Arg& a : args) {
    if (e.nargs == kMaxArgs) break;
    e.args[e.nargs++] = a;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!sinks_.empty()) {
    // Subscribers see the stream before the cap: a dropped event still
    // reaches every sink, with its own sequence counter so the delivery
    // order matches the uncapped run's canonical order.
    Event s = e;
    s.seq = sub_seq_[track]++;
    pending_.push_back(s);
  }
  if (max_events_ != 0 && events_.size() >= max_events_) {
    // Keep-oldest: the cap preserves the run's prefix (sequence numbers
    // are not consumed by dropped events, so the stored trace is exactly
    // what an uncapped run's first max_events appends would be).
    ++dropped_;
    if (drop_counter_) drop_counter_->add(1);
    return;
  }
  e.seq = track_seq_[track]++;
  events_.push_back(e);
}

void Tracer::complete(std::uint32_t track, const char* name, const char* cat,
                      double start, double end, std::initializer_list<Arg> args) {
  push(track, name, cat, start, end >= start ? end - start : 0.0, args);
}

void Tracer::instant(std::uint32_t track, const char* name, const char* cat,
                     double ts, std::initializer_list<Arg> args) {
  push(track, name, cat, ts, -1.0, args);
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::vector<const Tracer::Event*> Tracer::sorted() const {
  std::vector<const Event*> order;
  order.reserve(events_.size());
  for (const Event& e : events_) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const Event* a, const Event* b) {
    if (a->ts != b->ts) return a->ts < b->ts;
    if (a->track != b->track) return a->track < b->track;
    return a->seq < b->seq;
  });
  return order;
}

void Tracer::write_chrome(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const auto& [id, name] : track_names_) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": " << id
       << ", \"args\": {\"name\": \"" << EscapeJson(name) << "\"}}";
  }
  for (const Event* e : sorted()) {
    sep();
    // Virtual seconds -> trace microseconds.
    os << "{\"name\": \"" << EscapeJson(e->name) << "\", \"cat\": \""
       << EscapeJson(e->cat) << "\", \"ph\": \"" << (e->dur < 0 ? 'i' : 'X')
       << "\", \"pid\": 0, \"tid\": " << e->track << ", \"ts\": "
       << FmtFixed(e->ts * 1e6, 3);
    if (e->dur < 0) {
      os << ", \"s\": \"t\"";
    } else {
      os << ", \"dur\": " << FmtFixed(e->dur * 1e6, 3);
    }
    if (e->nargs > 0) {
      os << ", \"args\": {";
      for (std::uint32_t i = 0; i < e->nargs; ++i) {
        if (i) os << ", ";
        os << "\"" << EscapeJson(e->args[i].key) << "\": ";
        if (e->args[i].integral) {
          os << e->args[i].u;
        } else {
          os << FmtG(e->args[i].d);
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

void Tracer::for_each_sorted(
    const std::function<void(const EventView&, const std::string& track_name)>&
        fn) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Event* e : sorted()) {
    EventView v{e->ts, e->dur, e->track, e->seq, e->name, e->cat, e->args,
                e->nargs};
    auto it = track_names_.find(e->track);
    if (it != track_names_.end()) {
      fn(v, it->second);
    } else {
      fn(v, "track" + std::to_string(e->track));
    }
  }
}

std::string Tracer::track_name_locked(std::uint32_t id) const {
  auto it = track_names_.find(id);
  if (it != track_names_.end()) return it->second;
  return "track" + std::to_string(id);
}

void Tracer::subscribe(MonitorSink* sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sinks_.push_back(sink);
  has_subscribers_.store(true, std::memory_order_relaxed);
}

void Tracer::deliver(double watermark, bool all) {
  // Extract the due batch under the lock, deliver outside it: sinks run
  // arbitrary analysis and must not deadlock against racing appends.
  struct Due {
    Event e;
    std::string track;
  };
  std::vector<Due> due;
  std::vector<MonitorSink*> sinks;
  std::uint64_t base = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (sinks_.empty()) return;
    sinks = sinks_;
    std::vector<Event> keep;
    for (const Event& e : pending_) {
      if (all || e.ts < watermark) {
        due.push_back({e, track_name_locked(e.track)});
      } else {
        keep.push_back(e);
      }
    }
    pending_ = std::move(keep);
    std::sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
      if (a.e.ts != b.e.ts) return a.e.ts < b.e.ts;
      if (a.e.track != b.e.track) return a.e.track < b.e.track;
      return a.e.seq < b.e.seq;
    });
    base = delivered_;
    delivered_ += due.size();
  }
  for (std::size_t i = 0; i < due.size(); ++i) {
    AnalysisEvent a;
    a.ts = due[i].e.ts;
    a.dur = due[i].e.dur;
    a.track = due[i].track;
    a.cat = due[i].e.cat;
    a.name = due[i].e.name;
    for (std::uint32_t k = 0; k < due[i].e.nargs; ++k) {
      const Arg& arg = due[i].e.args[k];
      a.args.emplace_back(arg.key,
                          arg.integral ? static_cast<double>(arg.u) : arg.d);
    }
    for (MonitorSink* s : sinks) s->on_event(a, base + i);
  }
}

void Tracer::pump_subscribers(double watermark) { deliver(watermark, false); }

void Tracer::flush_subscribers(double now) {
  deliver(0.0, true);
  std::vector<MonitorSink*> sinks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sinks = sinks_;
  }
  for (MonitorSink* s : sinks) s->finish(now);
}

void Tracer::write_compact(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const Event* e : sorted()) {
    os << FmtFixed(e->ts, 9) << ' ';
    auto it = track_names_.find(e->track);
    if (it != track_names_.end()) {
      os << it->second;
    } else {
      os << "track" << e->track;
    }
    os << ' ' << (e->dur < 0 ? 'i' : 'X') << ' ' << e->cat << ':' << e->name;
    if (e->dur >= 0) os << " dur=" << FmtFixed(e->dur, 9);
    for (std::uint32_t i = 0; i < e->nargs; ++i) {
      os << ' ' << e->args[i].key << '=';
      if (e->args[i].integral) {
        os << e->args[i].u;
      } else {
        os << FmtG(e->args[i].d);
      }
    }
    os << '\n';
  }
}

}  // namespace pdsi::obs
