// pdsi::obs — virtual-time tracing and metrics for the simulator.
//
// The PDSI report's method is explaining *why* parallel I/O collapses
// (lock convoys, seek storms, incast); a number without its event
// timeline cannot do that. This layer records begin/end spans and instant
// events stamped with sim virtual time plus named counters / gauges /
// fixed-bucket histograms, and exports them two ways:
//   * Chrome trace_event JSON  — load in chrome://tracing or Perfetto;
//   * compact text             — canonical, sorted, fixed-precision, used
//                                as a golden-file regression oracle (same
//                                seed => byte-identical trace).
//
// Zero overhead when disabled: instrumented subsystems hold an
// `obs::Context*` that defaults to nullptr, and every instrumentation
// site is a branch-on-null. Nothing is allocated, hashed or locked unless
// a context is installed.
//
// Determinism: events may be appended from many rank threads, so the
// global append order is not reproducible — but each event carries a
// per-track sequence number, and exporters sort by (time, track, seq).
// Appends to one track happen either from that track's own thread in
// program order or inside VirtualScheduler::atomically sections (which
// are totally ordered by the scheduler), so per-track sequences are
// exact across reruns and the sorted export is byte-stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace pdsi::obs {

// -- Metric instruments ------------------------------------------------------

/// Monotonic integer counter. Lock-free; sums are order-independent, so
/// concurrent increments stay deterministic.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Double-valued gauge/accumulator (queue depths, busy seconds). add() is
/// order-sensitive in floating point; call it only from deterministic
/// contexts (inside atomically sections or a single thread) if the value
/// feeds a golden file.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double dv) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + dv, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples in (bounds[i-1],
/// bounds[i]], plus one overflow bucket. Integer counts, so concurrent
/// adds are order-independent.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double v);
  std::uint64_t total() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] pairs with bounds()[i]; the final element is overflow.
  std::vector<std::uint64_t> counts() const;

  /// Quantile estimate (q in [0, 1]) assuming samples are spread linearly
  /// within their bucket. The first bucket interpolates from 0 (the
  /// instruments record non-negative latencies/sizes); the overflow
  /// bucket has no upper edge, so any rank landing there reports the
  /// highest finite bound. An empty histogram reports 0.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;
};

/// Named instruments. Instances are created on first use and their
/// addresses are stable for the registry's lifetime — instrumented
/// objects look up once at construction and then poke the raw pointer.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies on first creation only (ascending).
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Canonical text dump, sorted by instrument name:
  ///   counter <name> <value>
  ///   gauge <name> <%.9g>
  ///   hist <name> le<bound>=<count> ... inf=<count>
  void write_text(std::ostream& os) const;

  /// The same content as JSON (one object with "counters", "gauges" and
  /// "hists" members, names sorted, fixed %.9g number formatting) so
  /// dumps are machine-readable and byte-stable for golden comparisons.
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// -- Tracing -----------------------------------------------------------------

/// A numeric span/instant argument. Keys must be string literals (the
/// tracer stores the pointer, not a copy).
struct Arg {
  const char* key;
  bool integral;
  std::uint64_t u;
  double d;

  static Arg Int(const char* k, std::uint64_t v) { return {k, true, v, 0.0}; }
  static Arg Num(const char* k, double v) { return {k, false, 0, v}; }
};

/// Well-known track (Chrome "tid") assignments. Ranks own [0, 500).
inline constexpr std::uint32_t kRankTrackBase = 0;
inline constexpr std::uint32_t kMdsTrack = 500;
inline constexpr std::uint32_t kBbIngestTrack = 600;
inline constexpr std::uint32_t kBbDrainTrack = 601;
inline constexpr std::uint32_t kReaderTrackBase = 700;
inline constexpr std::uint32_t kFlattenTrack = 750;
inline constexpr std::uint32_t kCheckpointTrack = 800;
inline constexpr std::uint32_t kCheckpointDrainTrack = 801;
inline constexpr std::uint32_t kFaultTrack = 900;
inline constexpr std::uint32_t kTierTrack = 950;
inline constexpr std::uint32_t kConsistTrack = 980;
inline constexpr std::uint32_t kOssTrackBase = 1000;

/// Read-only view of one recorded event, for analysis passes (the
/// profile/critical-path modules). Pointers borrow from the Tracer and
/// are only valid during the visitation callback.
struct EventView {
  double ts;
  double dur;  ///< < 0 for instants
  std::uint32_t track;
  std::uint64_t seq;
  const char* name;
  const char* cat;
  const Arg* args;
  std::uint32_t nargs;
};

class MonitorSink;

class Tracer {
 public:
  static constexpr std::size_t kMaxArgs = 6;

  /// Names a track (idempotent; first name wins). Unnamed tracks export
  /// as "track<id>".
  void track(std::uint32_t id, const std::string& name);

  /// Bounds the event buffer: once `cap` events are stored, further
  /// appends are counted in dropped_events() and discarded (keep-oldest
  /// policy), so week-long sims cannot grow the tracer without bound.
  /// 0 (the default) means unlimited. Which events are dropped is exact
  /// and reproducible only under the same deterministic-append invariant
  /// the per-track sequence numbers rely on (single thread or
  /// `atomically` sections); racing appends keep the count exact but may
  /// vary which side of the cap an event lands on.
  void set_max_events(std::size_t cap);
  std::uint64_t dropped_events() const;
  /// Mirrors every drop into `c` (e.g. a Registry counter named
  /// "obs.dropped_events") so metric dumps expose trace truncation.
  void bind_drop_counter(Counter* c);

  /// A span [start, end] on `track`. Chrome phase 'X'.
  void complete(std::uint32_t track, const char* name, const char* cat,
                double start, double end, std::initializer_list<Arg> args = {});

  /// A point event at `ts`. Chrome phase 'i'.
  void instant(std::uint32_t track, const char* name, const char* cat, double ts,
               std::initializer_list<Arg> args = {});

  std::size_t size() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}; ts/dur in
  /// microseconds of virtual time). Sorted like the compact export.
  void write_chrome(std::ostream& os) const;

  /// Canonical golden-file format, one event per line sorted by
  /// (ts, track, per-track seq), fixed-precision timestamps:
  ///   <ts %.9f> <track-name> <X|i> <cat>:<name> [dur=<%.9f>] [k=v ...]
  void write_compact(std::ostream& os) const;

  /// Visits every event in the canonical (ts, track, seq) order, with the
  /// track's name resolved ("track<id>" when unnamed). This is the
  /// in-process feed for profile/critical-path analysis; the views and
  /// their pointers are invalid after the callback returns.
  void for_each_sorted(
      const std::function<void(const EventView&, const std::string& track_name)>&
          fn) const;

  // -- Streaming subscribers -------------------------------------------------
  //
  // A subscribed MonitorSink observes the event stream *online*, in the
  // same canonical (ts, track, seq) order the exporters use, and sees
  // every event *before* the set_max_events keep-oldest cap can drop it
  // — a capped tracer feeds its sinks exactly what an uncapped run
  // would. Delivery is pull-based: appends land in a pending queue, and
  // the driving thread releases them with pump_subscribers(watermark)
  // at points where it can guarantee that every event with ts <
  // watermark has already been appended (sync points, barriers,
  // drains). flush_subscribers() delivers the remainder and closes the
  // stream. With no sinks attached, has_subscribers() is false and
  // nothing beyond the normal append happens — the zero-observer-effect
  // gate for the instrumentation sites that emit extra detail only when
  // someone is watching.

  /// Attaches `sink` (not owned; must outlive the tracer or the final
  /// flush). All sinks see the identical stream.
  void subscribe(MonitorSink* sink);

  /// True when at least one sink is attached. Lock-free; instrumentation
  /// sites branch on this to emit monitor-only spans/args.
  bool has_subscribers() const {
    return has_subscribers_.load(std::memory_order_relaxed);
  }

  /// Delivers every pending event with ts < watermark to the sinks in
  /// canonical order. The caller guarantees no later append will carry
  /// ts < watermark; events at or after the watermark stay queued.
  void pump_subscribers(double watermark);

  /// Delivers everything still pending, then calls finish(now) on every
  /// sink. Idempotent per subscription set.
  void flush_subscribers(double now);

 private:
  struct Event {
    double ts;
    double dur;  ///< < 0 for instants
    std::uint32_t track;
    std::uint64_t seq;  ///< per-track append index
    const char* name;
    const char* cat;
    Arg args[kMaxArgs];
    std::uint32_t nargs;
  };

  void push(std::uint32_t track, const char* name, const char* cat, double ts,
            double dur, std::initializer_list<Arg> args);
  std::vector<const Event*> sorted() const;  ///< callers must hold mu_
  void deliver(double watermark, bool all);
  std::string track_name_locked(std::uint32_t id) const;

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::uint32_t, std::string> track_names_;
  std::map<std::uint32_t, std::uint64_t> track_seq_;
  std::size_t max_events_ = 0;  ///< 0 = unlimited
  std::uint64_t dropped_ = 0;
  Counter* drop_counter_ = nullptr;
  // Subscriber state. pending_ events carry their own per-track sequence
  // (sub_seq_) advanced on *every* append — dropped or stored — so the
  // subscriber stream is the uncapped run's canonical order even when
  // the event buffer is capped.
  std::vector<MonitorSink*> sinks_;
  std::vector<Event> pending_;
  std::map<std::uint32_t, std::uint64_t> sub_seq_;
  std::uint64_t delivered_ = 0;  ///< running canonical index fed to sinks
  std::atomic<bool> has_subscribers_{false};
};

// -- The switch --------------------------------------------------------------

/// One pointer threaded through construction turns the stack observable;
/// nullptr (the default everywhere) compiles instrumentation down to a
/// skipped branch. Either member may be null independently.
struct Context {
  Tracer* tracer = nullptr;
  Registry* registry = nullptr;
};

/// Convenience latency bucket set (seconds, log-spaced) shared by the
/// subsystem histograms so dumps line up.
std::vector<double> LatencyBuckets();

}  // namespace pdsi::obs
