// pdsi::obs profile — turns a recorded trace into "where did the time
// go": per-(track, cat:name) span statistics with deterministic
// percentiles, a per-track time breakdown (busy / idle / lock_wait /
// seek / transfer / stall, derived from span categories), and per-track
// utilization timelines. The same analysis runs on an in-process Tracer
// (bench --profile) or on a parsed compact-trace file (trace_tool), and
// every output is byte-stable: fixed formatting, sorted keys, and a
// log-bucketed digest whose buckets come from frexp/ldexp rather than
// libm transcendentals, so the same samples always produce the same
// quantile estimates on every platform.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "pdsi/obs/obs.h"

namespace pdsi::obs {

/// One analysed event, decoupled from the Tracer's storage so analysis
/// can also run on traces read back from disk.
struct AnalysisEvent {
  double ts = 0.0;
  double dur = -1.0;  ///< < 0 for instants
  std::string track;  ///< resolved track name ("rank0", "oss2", ...)
  std::string cat;
  std::string name;
  std::vector<std::pair<std::string, double>> args;  ///< numeric args

  bool is_span() const { return dur >= 0.0; }
  double end() const { return ts + (dur > 0.0 ? dur : 0.0); }
  /// First arg named `key`, or `def` when absent.
  double arg(const std::string& key, double def = 0.0) const;
};

/// Snapshots a Tracer's events in canonical (ts, track, seq) order.
std::vector<AnalysisEvent> CollectEvents(const Tracer& tracer);

/// Parses the canonical compact text format (`Tracer::write_compact`)
/// back into events. Returns false with a message in *error on the first
/// malformed line. Track/category/event names containing spaces are not
/// representable in the format and therefore not parseable.
bool ParseCompactTrace(std::istream& in, std::vector<AnalysisEvent>* out,
                       std::string* error);

/// Fixed-resolution log-bucketed digest: positive samples land in one of
/// kSubBuckets sub-buckets per power of two (relative bucket width
/// 2^(1/8) ≈ 9%), non-positive samples in a dedicated zero bucket.
/// Bucket selection uses frexp (exact on IEEE doubles) so digests are
/// bit-deterministic; quantiles interpolate linearly within a bucket.
class LogDigest {
 public:
  static constexpr int kSubBuckets = 8;

  void add(double v);
  std::uint64_t count() const { return count_; }
  /// Quantile estimate for q in [0, 1]; 0 for an empty digest.
  double quantile(double q) const;

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;  ///< key -> count
  std::uint64_t zero_ = 0;                         ///< samples <= 0
  std::uint64_t count_ = 0;
};

/// Aggregate over all spans sharing one (track, cat:name) key.
struct SpanStats {
  std::uint64_t count = 0;
  double total = 0.0;  ///< sum of durations
  double self = 0.0;   ///< total minus directly nested same-track spans
  double min = 0.0;
  double max = 0.0;
  LogDigest digest;  ///< of durations, for p50/p90/p99
};

/// Where one track's wall-clock went, over the trace's global window.
/// seek/transfer split "disk"-category spans via their seek_s argument;
/// lock_wait and stall match the span names the subsystems emit; busy is
/// the remaining covered time (span-union minus the attributed classes,
/// clamped at zero); idle is the uncovered remainder of the window.
struct TrackBreakdown {
  double busy = 0.0;
  double idle = 0.0;
  double lock_wait = 0.0;
  double seek = 0.0;
  double transfer = 0.0;
  double stall = 0.0;
  double covered = 0.0;             ///< union of this track's spans
  std::vector<double> utilization;  ///< per-bin covered fraction
};

struct ProfileOptions {
  std::size_t timeline_bins = 24;  ///< utilization timeline resolution
};

class Profile {
 public:
  /// Aggregates `events` (canonical order not required; ties are broken
  /// deterministically). Instants count toward n_events only.
  static Profile Build(const std::vector<AnalysisEvent>& events,
                       const ProfileOptions& options = {});

  /// Human-readable report: span table sorted by total time descending
  /// (key ascending on ties), then per-track breakdowns and utilization
  /// timelines sorted by track name. Byte-stable.
  void write_text(std::ostream& os) const;

  /// The same content as a single JSON object (sorted keys, %.9g
  /// numbers). Byte-stable.
  void write_json(std::ostream& os) const;

  /// Flat `"key": value` fields (no braces) summarising the profile for
  /// a BENCH_*.json line: window, event/span counts, class totals over
  /// all tracks, and the heaviest span key.
  void write_summary_fields(std::ostream& os) const;

  const std::map<std::string, SpanStats>& spans() const { return spans_; }
  const std::map<std::string, TrackBreakdown>& tracks() const { return tracks_; }
  double window_start() const { return t0_; }
  double window_end() const { return t1_; }
  std::uint64_t n_events() const { return n_events_; }
  std::uint64_t n_spans() const { return n_spans_; }

 private:
  std::map<std::string, SpanStats> spans_;  ///< "track cat:name" -> stats
  std::map<std::string, TrackBreakdown> tracks_;
  double t0_ = 0.0;
  double t1_ = 0.0;
  std::uint64_t n_events_ = 0;
  std::uint64_t n_spans_ = 0;
};

}  // namespace pdsi::obs
