// pdsi::obs critical path — explains a trace's makespan by walking the
// dependency chain backwards from the last span to finish. At every step
// the predecessor is the span (on any track) that finished last at or
// before the current span's start: in a virtual-time simulation the
// event that released the chain. The walk crosses track boundaries —
// from the slowest rank into the OSS disk spans that gated it, across
// barrier/drain handoffs into the burst-buffer drain track — so fig08's
// N-to-1 collapse is read off as "lock_wait and seek spans dominate the
// path" instead of eyeballed in Perfetto. Output is deterministic: every
// choice has a total tie-break order and all formatting is fixed.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "pdsi/obs/profile.h"

namespace pdsi::obs {

/// One step on the critical path (chronological order in the result).
struct CriticalStep {
  AnalysisEvent ev;    ///< the span (copied out of the input)
  double wait_s = 0.0; ///< gap between the predecessor's end and ev.ts
};

struct CriticalPathResult {
  std::vector<CriticalStep> steps;  ///< chronological
  double makespan = 0.0;            ///< last span end minus first span start
  double span_seconds = 0.0;        ///< sum of step durations
  double wait_seconds = 0.0;        ///< sum of inter-step gaps

  /// Aggregated contribution per "cat:name", descending (key ascending
  /// on ties).
  std::vector<std::pair<std::string, double>> by_kind() const;

  /// Sorted report: totals, per-kind contributions, then the top_k
  /// longest individual steps. Byte-stable.
  void write_text(std::ostream& os, std::size_t top_k = 10) const;
  /// The same as one JSON object. Byte-stable.
  void write_json(std::ostream& os, std::size_t top_k = 10) const;
};

/// Extracts the critical path from `events` (instants are ignored).
/// Returns an empty result when the trace holds no spans.
CriticalPathResult ExtractCriticalPath(const std::vector<AnalysisEvent>& events);

}  // namespace pdsi::obs
