// pdsi::obs live monitoring — streaming sinks over the canonical event
// order.
//
// A MonitorSink consumes the same (ts, track, seq)-sorted stream the
// exporters write, but *online*: either subscribed to a live Tracer
// (Tracer::subscribe + pump_subscribers at safe points) or replayed from
// a recorded trace (ReplayEvents), with identical results either way —
// the sink interface is the pivot that makes post-hoc analysis and live
// telemetry the same code. Everything here is deterministic in virtual
// time: the built-in sinks keep no wall-clock state, alarm decisions
// depend only on the event stream, and alarm rendering is fixed-format,
// so monitor output is a byte-stable golden artifact like the traces.
//
// Built-in sinks:
//   * SloSink              — rolling-window exact quantiles per span key
//                            with threshold alarms (the per-request SLO);
//   * WatermarkSink        — per-track concurrency high-watermarks and
//                            covered-time utilization, with optional
//                            depth alarms (queue build-up);
//   * EwmaAnomalySink      — latency-regression detection: EWMA baseline
//                            plus EWMA absolute deviation, alarming when
//                            a sample leaves the band;
//   * RequestBreakdownSink — consumes the rpc engine's per-request
//                            rpc_req spans (see rpc/engine.h) and renders
//                            queue/stall/retry/wire/service breakdowns
//                            that sum exactly to the end-to-end latency.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "pdsi/obs/profile.h"

namespace pdsi::obs {

/// Streaming consumer of analysis events in canonical order. `index` is
/// the event's position in the full (uncapped) sorted stream — the same
/// index CollectEvents/ParseCompactTrace vectors use, so online and
/// batch passes can name the same events.
class MonitorSink {
 public:
  virtual ~MonitorSink() = default;
  virtual void on_event(const AnalysisEvent& e, std::uint64_t index) = 0;
  /// End of stream, at virtual time `now`.
  virtual void finish(double /*now*/) {}
};

/// Feeds an already-sorted event vector through `sinks` (on_event with
/// the vector index, then finish at the max event end time) — the replay
/// half of the online/offline equivalence.
void ReplayEvents(const std::vector<AnalysisEvent>& events,
                  const std::vector<MonitorSink*>& sinks);

// -- Alarms ------------------------------------------------------------------

/// One fired alarm. Formatting is fixed so alarm logs diff byte-stably.
struct Alarm {
  double ts = 0.0;         ///< virtual time the alarm fired
  std::string kind;        ///< "slo" | "watermark" | "anomaly" | "consistency"
  std::string key;         ///< subject ("rpc:rpc_req", "oss0", ...)
  double value = 0.0;      ///< observed value
  double threshold = 0.0;  ///< configured limit it crossed
  std::string detail;      ///< human-readable cause
};

/// "ALARM t=<%.9f> <kind> <key> value=<%.9g> limit=<%.9g> <detail>"
std::string FormatAlarm(const Alarm& a);

// -- SloSink -----------------------------------------------------------------

/// One service-level objective over a span key.
struct SloSpec {
  std::string key;           ///< "cat:name" of the spans to watch
  double threshold_s = 0.0;  ///< alarm when the window quantile exceeds this
  double quantile = 0.99;
  double window_s = 1.0;         ///< rolling window, by span end time
  std::uint64_t min_samples = 16;  ///< no verdicts on thin windows
  double cooldown_s = 0.5;       ///< min gap between alarms for this SLO
};

/// Rolling-window latency quantiles with threshold alarms. The quantile
/// is exact over the window's samples (no histogram approximation), so a
/// run's alarms are a pure function of the stream.
class SloSink : public MonitorSink {
 public:
  explicit SloSink(std::vector<SloSpec> specs);

  void on_event(const AnalysisEvent& e, std::uint64_t index) override;

  const std::vector<Alarm>& alarms() const { return alarms_; }
  std::uint64_t samples(const std::string& key) const;

 private:
  struct State {
    SloSpec spec;
    std::deque<std::pair<double, double>> window;  ///< (end_ts, dur)
    std::uint64_t total = 0;
    double last_alarm = -1e300;
  };

  std::map<std::string, State> states_;  ///< key -> state
  std::vector<Alarm> alarms_;
};

// -- WatermarkSink -----------------------------------------------------------

struct WatermarkSpec {
  /// Only spans in these categories count; empty = every span.
  std::set<std::string> cats;
  /// Alarm when a track's concurrent-span depth reaches this; 0 = never.
  std::uint64_t depth_limit = 0;
  double cooldown_s = 0.5;
};

/// Per-track queue-depth high-watermarks and covered-time utilization.
/// Depth is the number of spans overlapping in virtual time, maintained
/// with an end-time heap as spans arrive in start order.
class WatermarkSink : public MonitorSink {
 public:
  explicit WatermarkSink(WatermarkSpec spec = {});

  void on_event(const AnalysisEvent& e, std::uint64_t index) override;
  void finish(double now) override;

  const std::vector<Alarm>& alarms() const { return alarms_; }
  std::uint64_t max_depth(const std::string& track) const;
  /// Covered fraction of [first span start, finish time].
  double utilization(const std::string& track) const;
  /// "watermark <track> depth=<n> covered=<%.9f> util=<%.9g>" per track,
  /// sorted by track name. Byte-stable.
  void write_report(std::ostream& os) const;

 private:
  struct State {
    std::vector<double> ends;  ///< min-heap of active span end times
    std::uint64_t max_depth = 0;
    double first_ts = 0.0;
    bool any = false;
    double covered = 0.0;
    double cover_until = -1e300;
    double last_alarm = -1e300;
  };

  WatermarkSpec spec_;
  std::map<std::string, State> states_;  ///< track -> state
  std::vector<Alarm> alarms_;
  double end_ts_ = 0.0;
};

// -- EwmaAnomalySink ---------------------------------------------------------

struct EwmaSpec {
  /// Only spans whose "cat:name" is listed; empty = every span key.
  std::set<std::string> keys;
  double alpha = 0.1;            ///< EWMA smoothing for mean and deviation
  double k = 4.0;                ///< alarm band: mean + k * deviation
  std::uint64_t warmup = 32;     ///< samples before verdicts
  double min_abs_s = 0.0;        ///< ignore excursions smaller than this
  double cooldown_s = 0.5;
};

/// Latency-regression detector: per span key, an EWMA of the duration
/// and an EWMA of the absolute deviation; a sample beyond
/// mean + k * deviation after warmup raises an "anomaly" alarm. All
/// state updates are fixed-order arithmetic on the sorted stream, so
/// verdicts replay identically.
class EwmaAnomalySink : public MonitorSink {
 public:
  explicit EwmaAnomalySink(EwmaSpec spec = {});

  void on_event(const AnalysisEvent& e, std::uint64_t index) override;

  const std::vector<Alarm>& alarms() const { return alarms_; }
  double mean(const std::string& key) const;

 private:
  struct State {
    double mean = 0.0;
    double dev = 0.0;
    std::uint64_t n = 0;
    double last_alarm = -1e300;
  };

  EwmaSpec spec_;
  std::map<std::string, State> states_;  ///< "cat:name" -> state
  std::vector<Alarm> alarms_;
};

// -- RequestBreakdownSink ----------------------------------------------------

/// One request's latency attribution, decoded from an rpc_req span. The
/// service component is the fixed-order remainder
/// total - queue - stall - retry - wire, so the five parts account for
/// the end-to-end latency exactly (virtual time, no estimation) and the
/// identity is reproducible bit-for-bit.
struct RequestBreakdown {
  std::uint64_t req = 0;
  std::uint64_t server = 0;
  std::string client;  ///< track the request was issued from
  double start = 0.0;
  double total_s = 0.0;
  double queue_s = 0.0;    ///< submit -> wire flush (batch wait)
  double stall_s = 0.0;    ///< in-flight window stalls
  double retry_s = 0.0;    ///< timeout + backoff penalties
  double wire_s = 0.0;     ///< network latency (message head only)
  double service_s = 0.0;  ///< total - queue - stall - retry - wire
  bool ok = true;
};

/// Collects rpc_req/rpc_req_fail spans into per-request breakdowns.
class RequestBreakdownSink : public MonitorSink {
 public:
  void on_event(const AnalysisEvent& e, std::uint64_t index) override;

  const std::vector<RequestBreakdown>& requests() const { return reqs_; }
  /// All components non-negative and the identity holds for every
  /// request (it does by construction; this pins it).
  bool exact() const;
  /// The `n` slowest requests (total desc, req asc on ties) as a fixed
  /// format table, followed by component totals. Byte-stable.
  void write_table(std::ostream& os, std::size_t n = 10) const;

 private:
  std::vector<RequestBreakdown> reqs_;
};

}  // namespace pdsi::obs
