#include "pdsi/obs/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace pdsi::obs {
namespace {

std::string FmtFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Union length of [start, end) intervals; `ivs` is sorted in place.
double UnionSeconds(std::vector<std::pair<double, double>>& ivs) {
  std::sort(ivs.begin(), ivs.end());
  double covered = 0.0, cur_lo = 0.0, cur_hi = -1.0;
  bool open = false;
  for (const auto& [lo, hi] : ivs) {
    if (!open || lo > cur_hi) {
      if (open) covered += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else if (hi > cur_hi) {
      cur_hi = hi;
    }
  }
  if (open) covered += cur_hi - cur_lo;
  return covered;
}

}  // namespace

double AnalysisEvent::arg(const std::string& key, double def) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return def;
}

std::vector<AnalysisEvent> CollectEvents(const Tracer& tracer) {
  std::vector<AnalysisEvent> out;
  tracer.for_each_sorted([&](const EventView& e, const std::string& track) {
    AnalysisEvent a;
    a.ts = e.ts;
    a.dur = e.dur;
    a.track = track;
    a.cat = e.cat;
    a.name = e.name;
    for (std::uint32_t i = 0; i < e.nargs; ++i) {
      const Arg& arg = e.args[i];
      a.args.emplace_back(arg.key,
                          arg.integral ? static_cast<double>(arg.u) : arg.d);
    }
    out.push_back(std::move(a));
  });
  return out;
}

bool ParseCompactTrace(std::istream& in, std::vector<AnalysisEvent>* out,
                       std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& what) {
    if (error) {
      *error = "line " + std::to_string(lineno) + ": " + what;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> tok;
    std::istringstream ls(line);
    for (std::string t; ls >> t;) tok.push_back(std::move(t));
    if (tok.size() < 4) return fail("expected `<ts> <track> <X|i> <cat>:<name>`");
    AnalysisEvent e;
    char* endp = nullptr;
    e.ts = std::strtod(tok[0].c_str(), &endp);
    if (endp == tok[0].c_str() || *endp != '\0') return fail("bad timestamp");
    e.track = tok[1];
    const bool span = tok[2] == "X";
    if (!span && tok[2] != "i") return fail("bad phase `" + tok[2] + "`");
    const std::size_t colon = tok[3].find(':');
    if (colon == std::string::npos) return fail("missing cat:name separator");
    e.cat = tok[3].substr(0, colon);
    e.name = tok[3].substr(colon + 1);
    std::size_t next = 4;
    if (span) {
      if (tok.size() < 5 || tok[4].rfind("dur=", 0) != 0) {
        return fail("span without dur=");
      }
      e.dur = std::strtod(tok[4].c_str() + 4, &endp);
      if (*endp != '\0' || e.dur < 0.0) return fail("bad dur");
      next = 5;
    }
    for (; next < tok.size(); ++next) {
      const std::size_t eq = tok[next].find('=');
      if (eq == std::string::npos) return fail("bad arg `" + tok[next] + "`");
      const std::string val = tok[next].substr(eq + 1);
      const double v = std::strtod(val.c_str(), &endp);
      if (endp == val.c_str() || *endp != '\0') {
        return fail("non-numeric arg `" + tok[next] + "`");
      }
      e.args.emplace_back(tok[next].substr(0, eq), v);
    }
    out->push_back(std::move(e));
  }
  return true;
}

// -- LogDigest ---------------------------------------------------------------

void LogDigest::add(double v) {
  ++count_;
  if (!(v > 0.0)) {
    ++zero_;
    return;
  }
  // frexp: v = f * 2^e with f in [0.5, 1). The sub-bucket index inside
  // the power of two is floor((f - 0.5) * 2 * kSubBuckets) — pure
  // IEEE arithmetic, no libm rounding differences across platforms.
  int e = 0;
  const double f = std::frexp(v, &e);
  int sub = static_cast<int>((f - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  ++buckets_[static_cast<std::int64_t>(e) * kSubBuckets + sub];
}

double LogDigest::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count_);
  double cum = static_cast<double>(zero_);
  if (rank <= cum && zero_ > 0) return 0.0;
  for (const auto& [key, n] : buckets_) {
    const double next = cum + static_cast<double>(n);
    if (rank <= next || key == buckets_.rbegin()->first) {
      const auto e = static_cast<int>(key >= 0 ? key / kSubBuckets
                                               : (key - (kSubBuckets - 1)) / kSubBuckets);
      const auto sub = static_cast<int>(key - static_cast<std::int64_t>(e) * kSubBuckets);
      const double lo = std::ldexp(0.5 + sub / (2.0 * kSubBuckets), e);
      const double hi = std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), e);
      double frac = (rank - cum) / static_cast<double>(n);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return 0.0;
}

// -- Profile -----------------------------------------------------------------

Profile Profile::Build(const std::vector<AnalysisEvent>& events,
                       const ProfileOptions& options) {
  Profile p;
  p.n_events_ = events.size();
  if (events.empty()) return p;

  p.t0_ = std::numeric_limits<double>::infinity();
  p.t1_ = -std::numeric_limits<double>::infinity();
  for (const AnalysisEvent& e : events) {
    p.t0_ = std::min(p.t0_, e.ts);
    p.t1_ = std::max(p.t1_, e.end());
  }

  // Deterministic span order regardless of input order: sort indices by
  // (track, ts, -dur, cat:name, original index).
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].is_span()) order.push_back(i);
  }
  p.n_spans_ = order.size();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const AnalysisEvent& x = events[a];
    const AnalysisEvent& y = events[b];
    if (x.track != y.track) return x.track < y.track;
    if (x.ts != y.ts) return x.ts < y.ts;
    if (x.dur != y.dur) return x.dur > y.dur;  // parents before children
    return a < b;
  });

  // Self time: within one track, a span's self time is its duration
  // minus the durations of spans directly nested inside it (containment
  // by [ts, end]; partial overlaps are not subtracted). The stack walk
  // below is the standard flame-graph attribution.
  std::vector<double> self(events.size(), 0.0);
  {
    struct Open {
      std::size_t idx;
      double end;
      double child_total = 0.0;
    };
    std::vector<Open> stack;
    std::string cur_track;
    auto close_all = [&](double upto) {
      while (!stack.empty() && stack.back().end <= upto) {
        const Open top = stack.back();
        stack.pop_back();
        double s = events[top.idx].dur - top.child_total;
        self[top.idx] = s > 0.0 ? s : 0.0;
        if (!stack.empty()) stack.back().child_total += events[top.idx].dur;
      }
    };
    for (std::size_t i : order) {
      const AnalysisEvent& e = events[i];
      if (e.track != cur_track) {
        close_all(std::numeric_limits<double>::infinity());
        cur_track = e.track;
      }
      close_all(e.ts);
      if (!stack.empty() && e.end() > stack.back().end) {
        // Partial overlap: attribute nothing, keep the enclosing span.
        self[i] = e.dur;
        continue;
      }
      stack.push_back({i, e.end(), 0.0});
    }
    close_all(std::numeric_limits<double>::infinity());
  }

  // Per-key aggregates and per-track class sums + coverage intervals.
  std::map<std::string, std::vector<std::pair<double, double>>> coverage;
  for (std::size_t i : order) {
    const AnalysisEvent& e = events[i];
    SpanStats& st = p.spans_[e.track + ' ' + e.cat + ':' + e.name];
    if (st.count == 0) {
      st.min = e.dur;
      st.max = e.dur;
    } else {
      st.min = std::min(st.min, e.dur);
      st.max = std::max(st.max, e.dur);
    }
    ++st.count;
    st.total += e.dur;
    st.self += self[i];
    st.digest.add(e.dur);

    TrackBreakdown& tb = p.tracks_[e.track];
    if (e.name == "lock_wait") {
      tb.lock_wait += e.dur;
    } else if (e.name == "stall") {
      tb.stall += e.dur;
    } else if (e.cat == "disk") {
      double seek = e.arg("seek_s", 0.0);
      if (seek < 0.0) seek = 0.0;
      if (seek > e.dur) seek = e.dur;
      tb.seek += seek;
      tb.transfer += e.dur - seek;
    }
    coverage[e.track].emplace_back(e.ts, e.end());
  }

  const double window = p.t1_ - p.t0_;
  for (auto& [track, ivs] : coverage) {
    TrackBreakdown& tb = p.tracks_[track];
    tb.covered = UnionSeconds(ivs);  // sorts ivs
    double busy = tb.covered - tb.lock_wait - tb.stall - tb.seek - tb.transfer;
    tb.busy = busy > 0.0 ? busy : 0.0;
    double idle = window - tb.covered;
    tb.idle = idle > 0.0 ? idle : 0.0;

    tb.utilization.assign(options.timeline_bins, 0.0);
    if (window > 0.0 && options.timeline_bins > 0) {
      const double bin_w = window / static_cast<double>(options.timeline_bins);
      // ivs is sorted but may overlap; merge into disjoint intervals so
      // a bin's covered fraction never exceeds 1.
      std::vector<std::pair<double, double>> merged;
      for (const auto& iv : ivs) {
        if (merged.empty() || iv.first > merged.back().second) {
          merged.push_back(iv);
        } else if (iv.second > merged.back().second) {
          merged.back().second = iv.second;
        }
      }
      for (const auto& [lo, hi] : merged) {
        const std::size_t b0 = static_cast<std::size_t>(
            std::min(std::max((lo - p.t0_) / bin_w, 0.0),
                     static_cast<double>(options.timeline_bins - 1)));
        for (std::size_t b = b0; b < options.timeline_bins; ++b) {
          const double blo = p.t0_ + static_cast<double>(b) * bin_w;
          const double bhi = blo + bin_w;
          if (lo >= bhi) continue;
          if (hi <= blo) break;
          tb.utilization[b] += (std::min(hi, bhi) - std::max(lo, blo)) / bin_w;
        }
      }
      for (double& u : tb.utilization) {
        if (u > 1.0) u = 1.0;
      }
    }
  }
  return p;
}

void Profile::write_text(std::ostream& os) const {
  os << "profile: window [" << FmtFixed(t0_, 9) << ", " << FmtFixed(t1_, 9)
     << "] " << FmtFixed(t1_ - t0_, 9) << "s, " << n_events_ << " events, "
     << n_spans_ << " spans\n";
  if (spans_.empty()) return;

  // Span table sorted by total descending, key ascending on ties.
  std::vector<const std::pair<const std::string, SpanStats>*> rows;
  for (const auto& kv : spans_) rows.push_back(&kv);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->second.total != b->second.total) return a->second.total > b->second.total;
    return a->first < b->first;
  });
  os << "\nspan (track cat:name)                 count      total       self"
        "        min        max        p50        p90        p99\n";
  for (const auto* kv : rows) {
    const SpanStats& s = kv->second;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-36s %6llu %10.6f %10.6f %10.6f %10.6f %10.6f %10.6f %10.6f\n",
                  kv->first.c_str(), static_cast<unsigned long long>(s.count),
                  s.total, s.self, s.min, s.max, s.digest.quantile(0.5),
                  s.digest.quantile(0.9), s.digest.quantile(0.99));
    os << line;
  }

  os << "\ntrack breakdown (seconds over the window)\n"
     << "track              busy       idle  lock_wait       seek   transfer"
        "      stall    covered\n";
  for (const auto& [track, tb] : tracks_) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-12s %10.6f %10.6f %10.6f %10.6f %10.6f %10.6f %10.6f\n",
                  track.c_str(), tb.busy, tb.idle, tb.lock_wait, tb.seek,
                  tb.transfer, tb.stall, tb.covered);
    os << line;
  }

  os << "\nutilization timeline (covered fraction per bin)\n";
  for (const auto& [track, tb] : tracks_) {
    os << track;
    for (double u : tb.utilization) os << ' ' << FmtFixed(u, 3);
    os << '\n';
  }
}

void Profile::write_json(std::ostream& os) const {
  os << "{\"window\": {\"start\": " << FmtG(t0_) << ", \"end\": " << FmtG(t1_)
     << ", \"seconds\": " << FmtG(t1_ - t0_) << "}, \"events\": " << n_events_
     << ", \"spans_total\": " << n_spans_ << ", \"spans\": {";
  bool first = true;
  for (const auto& [key, s] : spans_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << EscapeJson(key) << "\": {\"count\": " << s.count
       << ", \"total_s\": " << FmtG(s.total) << ", \"self_s\": " << FmtG(s.self)
       << ", \"min_s\": " << FmtG(s.min) << ", \"max_s\": " << FmtG(s.max)
       << ", \"p50_s\": " << FmtG(s.digest.quantile(0.5))
       << ", \"p90_s\": " << FmtG(s.digest.quantile(0.9))
       << ", \"p99_s\": " << FmtG(s.digest.quantile(0.99)) << '}';
  }
  os << "}, \"tracks\": {";
  first = true;
  for (const auto& [track, tb] : tracks_) {
    if (!first) os << ", ";
    first = false;
    os << '"' << EscapeJson(track) << "\": {\"busy_s\": " << FmtG(tb.busy)
       << ", \"idle_s\": " << FmtG(tb.idle)
       << ", \"lock_wait_s\": " << FmtG(tb.lock_wait)
       << ", \"seek_s\": " << FmtG(tb.seek)
       << ", \"transfer_s\": " << FmtG(tb.transfer)
       << ", \"stall_s\": " << FmtG(tb.stall)
       << ", \"covered_s\": " << FmtG(tb.covered) << ", \"utilization\": [";
    for (std::size_t i = 0; i < tb.utilization.size(); ++i) {
      if (i) os << ", ";
      os << FmtFixed(tb.utilization[i], 3);
    }
    os << "]}";
  }
  os << "}}\n";
}

void Profile::write_summary_fields(std::ostream& os) const {
  double busy = 0.0, idle = 0.0, lock_wait = 0.0, seek = 0.0, transfer = 0.0,
         stall = 0.0;
  for (const auto& [track, tb] : tracks_) {
    busy += tb.busy;
    idle += tb.idle;
    lock_wait += tb.lock_wait;
    seek += tb.seek;
    transfer += tb.transfer;
    stall += tb.stall;
  }
  const std::pair<const std::string, SpanStats>* top = nullptr;
  for (const auto& kv : spans_) {
    if (!top || kv.second.total > top->second.total) top = &kv;
  }
  os << "\"window_s\": " << FmtG(t1_ - t0_) << ", \"events\": " << n_events_
     << ", \"spans\": " << n_spans_ << ", \"busy_s\": " << FmtG(busy)
     << ", \"idle_s\": " << FmtG(idle)
     << ", \"lock_wait_s\": " << FmtG(lock_wait)
     << ", \"seek_s\": " << FmtG(seek)
     << ", \"transfer_s\": " << FmtG(transfer)
     << ", \"stall_s\": " << FmtG(stall);
  if (top) {
    os << ", \"top_span\": \"" << EscapeJson(top->first)
       << "\", \"top_span_total_s\": " << FmtG(top->second.total);
  }
}

}  // namespace pdsi::obs
