#include "pdsi/obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace pdsi::obs {
namespace {

std::string FmtFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Total order on spans used for every tie-break so the extracted path
/// is identical across runs and platforms.
bool SpanLess(const AnalysisEvent& a, const AnalysisEvent& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.dur != b.dur) return a.dur < b.dur;
  if (a.track != b.track) return a.track < b.track;
  if (a.cat != b.cat) return a.cat < b.cat;
  return a.name < b.name;
}

}  // namespace

CriticalPathResult ExtractCriticalPath(
    const std::vector<AnalysisEvent>& events) {
  CriticalPathResult out;
  std::vector<std::size_t> spans;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].is_span()) spans.push_back(i);
  }
  if (spans.empty()) return out;

  // Spans sorted by end time: the predecessor query "latest end <= t" is
  // a binary search plus a scan over the equal-end run.
  std::sort(spans.begin(), spans.end(), [&](std::size_t a, std::size_t b) {
    const double ea = events[a].end(), eb = events[b].end();
    if (ea != eb) return ea < eb;
    return SpanLess(events[a], events[b]);
  });

  double t0 = std::numeric_limits<double>::infinity();
  for (std::size_t i : spans) t0 = std::min(t0, events[i].ts);
  const std::size_t terminal = spans.back();
  out.makespan = events[terminal].end() - t0;

  // Walk backwards. Among spans with the maximal end <= current.ts the
  // same-track one wins (program order continues the chain), then the
  // longest, then SpanLess order.
  std::vector<char> visited(events.size(), 0);
  std::vector<std::size_t> path;  // reverse chronological
  std::size_t cur = terminal;
  visited[cur] = 1;
  path.push_back(cur);
  while (true) {
    const AnalysisEvent& c = events[cur];
    // upper_bound over end times for the last span ending <= c.ts.
    std::size_t lo = 0, hi = spans.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (events[spans[mid]].end() <= c.ts) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) break;
    const double best_end = events[spans[lo - 1]].end();
    std::size_t best = events.size();
    for (std::size_t j = lo; j-- > 0;) {
      const std::size_t i = spans[j];
      if (events[i].end() != best_end) break;
      if (visited[i]) continue;
      if (best == events.size()) {
        best = i;
        continue;
      }
      const AnalysisEvent& x = events[i];
      const AnalysisEvent& y = events[best];
      const bool x_same = x.track == c.track, y_same = y.track == c.track;
      if (x_same != y_same) {
        if (x_same) best = i;
        continue;
      }
      if (x.dur != y.dur) {
        if (x.dur > y.dur) best = i;
        continue;
      }
      if (SpanLess(x, y)) best = i;
    }
    if (best == events.size()) break;
    visited[best] = 1;
    path.push_back(best);
    cur = best;
  }

  std::reverse(path.begin(), path.end());
  double prev_end = events[path.front()].ts;  // first step has no wait
  for (std::size_t i : path) {
    CriticalStep step;
    step.ev = events[i];
    step.wait_s = events[i].ts > prev_end ? events[i].ts - prev_end : 0.0;
    out.wait_seconds += step.wait_s;
    out.span_seconds += events[i].dur;
    prev_end = events[i].end();
    out.steps.push_back(std::move(step));
  }
  return out;
}

std::vector<std::pair<std::string, double>> CriticalPathResult::by_kind() const {
  std::map<std::string, double> agg;
  for (const CriticalStep& s : steps) {
    agg[s.ev.cat + ':' + s.ev.name] += s.ev.dur;
  }
  std::vector<std::pair<std::string, double>> out(agg.begin(), agg.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void CriticalPathResult::write_text(std::ostream& os, std::size_t top_k) const {
  os << "critical path: " << steps.size() << " steps, makespan "
     << FmtFixed(makespan, 9) << "s, on-path spans " << FmtFixed(span_seconds, 9)
     << "s, waits " << FmtFixed(wait_seconds, 9) << "s\n";
  if (steps.empty()) return;

  os << "\ncontribution by span kind (cat:name, seconds on path)\n";
  for (const auto& [kind, secs] : by_kind()) {
    char line[192];
    std::snprintf(line, sizeof(line), "%-28s %12.6f\n", kind.c_str(), secs);
    os << line;
  }

  // Longest individual steps; ties broken by the global span order.
  std::vector<const CriticalStep*> longest;
  for (const CriticalStep& s : steps) longest.push_back(&s);
  std::sort(longest.begin(), longest.end(),
            [](const CriticalStep* a, const CriticalStep* b) {
              if (a->ev.dur != b->ev.dur) return a->ev.dur > b->ev.dur;
              return SpanLess(a->ev, b->ev);
            });
  if (longest.size() > top_k) longest.resize(top_k);
  os << "\ntop " << longest.size() << " steps\n";
  for (const CriticalStep* s : longest) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-12s %-24s start=%.9f dur=%.9f wait=%.9f\n",
                  s->ev.track.c_str(), (s->ev.cat + ':' + s->ev.name).c_str(),
                  s->ev.ts, s->ev.dur, s->wait_s);
    os << line;
  }
}

void CriticalPathResult::write_json(std::ostream& os, std::size_t top_k) const {
  os << "{\"steps\": " << steps.size() << ", \"makespan_s\": " << FmtG(makespan)
     << ", \"span_s\": " << FmtG(span_seconds)
     << ", \"wait_s\": " << FmtG(wait_seconds) << ", \"by_kind\": {";
  bool first = true;
  for (const auto& [kind, secs] : by_kind()) {
    if (!first) os << ", ";
    first = false;
    os << '"' << EscapeJson(kind) << "\": " << FmtG(secs);
  }
  os << "}, \"top_steps\": [";
  std::vector<const CriticalStep*> longest;
  for (const CriticalStep& s : steps) longest.push_back(&s);
  std::sort(longest.begin(), longest.end(),
            [](const CriticalStep* a, const CriticalStep* b) {
              if (a->ev.dur != b->ev.dur) return a->ev.dur > b->ev.dur;
              return SpanLess(a->ev, b->ev);
            });
  if (longest.size() > top_k) longest.resize(top_k);
  first = true;
  for (const CriticalStep* s : longest) {
    if (!first) os << ", ";
    first = false;
    os << "{\"track\": \"" << EscapeJson(s->ev.track) << "\", \"kind\": \""
       << EscapeJson(s->ev.cat + ':' + s->ev.name)
       << "\", \"start_s\": " << FmtG(s->ev.ts)
       << ", \"dur_s\": " << FmtG(s->ev.dur)
       << ", \"wait_s\": " << FmtG(s->wait_s) << '}';
  }
  os << "]}\n";
}

}  // namespace pdsi::obs
