#include "pdsi/obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pdsi::obs {
namespace {

std::string FmtFixed9(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", v);
  return buf;
}

std::string FmtG(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string SpanKey(const AnalysisEvent& e) { return e.cat + ":" + e.name; }

}  // namespace

void ReplayEvents(const std::vector<AnalysisEvent>& events,
                  const std::vector<MonitorSink*>& sinks) {
  double end = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    end = std::max(end, events[i].end());
    for (MonitorSink* s : sinks) s->on_event(events[i], i);
  }
  for (MonitorSink* s : sinks) s->finish(end);
}

std::string FormatAlarm(const Alarm& a) {
  std::string out = "ALARM t=" + FmtFixed9(a.ts) + " " + a.kind + " " + a.key +
                    " value=" + FmtG(a.value) + " limit=" + FmtG(a.threshold);
  if (!a.detail.empty()) out += " " + a.detail;
  return out;
}

// -- SloSink -----------------------------------------------------------------

SloSink::SloSink(std::vector<SloSpec> specs) {
  for (auto& s : specs) {
    State st;
    st.spec = std::move(s);
    states_.emplace(st.spec.key, std::move(st));
  }
}

std::uint64_t SloSink::samples(const std::string& key) const {
  auto it = states_.find(key);
  return it == states_.end() ? 0 : it->second.total;
}

void SloSink::on_event(const AnalysisEvent& e, std::uint64_t) {
  if (!e.is_span()) return;
  auto it = states_.find(SpanKey(e));
  if (it == states_.end()) return;
  State& st = it->second;
  const double end = e.end();
  st.window.emplace_back(end, e.dur);
  ++st.total;
  // Evict by span end time. Spans arrive sorted by start, not end, so an
  // unusually long span can land "late"; the window is still a pure
  // function of the stream because eviction only compares timestamps.
  while (!st.window.empty() &&
         st.window.front().first < end - st.spec.window_s) {
    st.window.pop_front();
  }
  if (st.window.size() < st.spec.min_samples) return;
  if (end < st.last_alarm + st.spec.cooldown_s) return;
  // Exact quantile over the window (nearest-rank on the sorted samples).
  std::vector<double> durs;
  durs.reserve(st.window.size());
  for (const auto& [ts, d] : st.window) durs.push_back(d);
  std::sort(durs.begin(), durs.end());
  const double q = st.spec.quantile;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(durs.size())));
  if (rank > 0) --rank;
  if (rank >= durs.size()) rank = durs.size() - 1;
  const double v = durs[rank];
  if (v > st.spec.threshold_s) {
    st.last_alarm = end;
    Alarm a;
    a.ts = end;
    a.kind = "slo";
    a.key = st.spec.key;
    a.value = v;
    a.threshold = st.spec.threshold_s;
    a.detail = "p" + FmtG(q * 100.0) + " over " +
               std::to_string(st.window.size()) + " samples in " +
               FmtG(st.spec.window_s) + "s window";
    alarms_.push_back(std::move(a));
  }
}

// -- WatermarkSink -----------------------------------------------------------

WatermarkSink::WatermarkSink(WatermarkSpec spec) : spec_(std::move(spec)) {}

void WatermarkSink::on_event(const AnalysisEvent& e, std::uint64_t) {
  if (!e.is_span()) return;
  if (!spec_.cats.empty() && spec_.cats.count(e.cat) == 0) return;
  State& st = states_[e.track];
  if (!st.any) {
    st.any = true;
    st.first_ts = e.ts;
  }
  // Retire spans that ended at or before this one's start; the rest are
  // concurrent with it.
  auto cmp = std::greater<double>();
  while (!st.ends.empty() && st.ends.front() <= e.ts) {
    std::pop_heap(st.ends.begin(), st.ends.end(), cmp);
    st.ends.pop_back();
  }
  const double end = e.end();
  st.ends.push_back(end);
  std::push_heap(st.ends.begin(), st.ends.end(), cmp);
  const std::uint64_t depth = st.ends.size();
  st.max_depth = std::max(st.max_depth, depth);
  // Covered-time union: spans arrive sorted by start.
  if (end > st.cover_until) {
    st.covered += end - std::max(e.ts, st.cover_until);
    st.cover_until = end;
  }
  end_ts_ = std::max(end_ts_, end);
  if (spec_.depth_limit != 0 && depth >= spec_.depth_limit &&
      e.ts >= st.last_alarm + spec_.cooldown_s) {
    st.last_alarm = e.ts;
    Alarm a;
    a.ts = e.ts;
    a.kind = "watermark";
    a.key = e.track;
    a.value = static_cast<double>(depth);
    a.threshold = static_cast<double>(spec_.depth_limit);
    a.detail = "concurrent spans at or over the depth limit";
    alarms_.push_back(std::move(a));
  }
}

void WatermarkSink::finish(double now) { end_ts_ = std::max(end_ts_, now); }

std::uint64_t WatermarkSink::max_depth(const std::string& track) const {
  auto it = states_.find(track);
  return it == states_.end() ? 0 : it->second.max_depth;
}

double WatermarkSink::utilization(const std::string& track) const {
  auto it = states_.find(track);
  if (it == states_.end() || !it->second.any) return 0.0;
  const double span = end_ts_ - it->second.first_ts;
  return span > 0.0 ? it->second.covered / span : 0.0;
}

void WatermarkSink::write_report(std::ostream& os) const {
  for (const auto& [track, st] : states_) {
    os << "watermark " << track << " depth=" << st.max_depth
       << " covered=" << FmtFixed9(st.covered)
       << " util=" << FmtG(utilization(track)) << '\n';
  }
}

// -- EwmaAnomalySink ---------------------------------------------------------

EwmaAnomalySink::EwmaAnomalySink(EwmaSpec spec) : spec_(std::move(spec)) {}

double EwmaAnomalySink::mean(const std::string& key) const {
  auto it = states_.find(key);
  return it == states_.end() ? 0.0 : it->second.mean;
}

void EwmaAnomalySink::on_event(const AnalysisEvent& e, std::uint64_t) {
  if (!e.is_span()) return;
  const std::string key = SpanKey(e);
  if (!spec_.keys.empty() && spec_.keys.count(key) == 0) return;
  State& st = states_[key];
  const double x = e.dur;
  if (st.n == 0) {
    st.mean = x;
    st.dev = 0.0;
    st.n = 1;
    return;
  }
  const double band = st.mean + spec_.k * st.dev;
  const double end = e.end();
  if (st.n >= spec_.warmup && x > band && x > spec_.min_abs_s &&
      end >= st.last_alarm + spec_.cooldown_s) {
    st.last_alarm = end;
    Alarm a;
    a.ts = end;
    a.kind = "anomaly";
    a.key = key;
    a.value = x;
    a.threshold = band;
    a.detail = "latency left the EWMA band (mean=" + FmtG(st.mean) +
               " dev=" + FmtG(st.dev) + ")";
    alarms_.push_back(std::move(a));
  }
  // Update after the verdict, so the anomalous sample does not dilute
  // the baseline it is judged against.
  const double err = x - st.mean;
  st.mean += spec_.alpha * err;
  st.dev += spec_.alpha * (std::fabs(err) - st.dev);
  ++st.n;
}

// -- RequestBreakdownSink ----------------------------------------------------

void RequestBreakdownSink::on_event(const AnalysisEvent& e, std::uint64_t) {
  if (!e.is_span() || e.cat != "rpc") return;
  const bool ok = e.name == "rpc_req";
  if (!ok && e.name != "rpc_req_fail") return;
  RequestBreakdown b;
  b.req = static_cast<std::uint64_t>(std::llround(e.arg("req", 0.0)));
  b.server = static_cast<std::uint64_t>(std::llround(e.arg("srv", 0.0)));
  b.client = e.track;
  b.start = e.ts;
  b.total_s = e.dur;
  b.queue_s = e.arg("queue_s", 0.0);
  b.stall_s = e.arg("stall_s", 0.0);
  b.retry_s = e.arg("retry_s", 0.0);
  b.wire_s = e.arg("wire_s", 0.0);
  b.service_s = b.total_s - b.queue_s - b.stall_s - b.retry_s - b.wire_s;
  b.ok = ok;
  reqs_.push_back(std::move(b));
}

bool RequestBreakdownSink::exact() const {
  // service is defined as the fixed-order remainder
  // total - queue - stall - retry - wire, so the identity is checked in
  // that same order — bitwise, no tolerance. What can genuinely fail is
  // a negative component (the engine double-charged a class) or a value
  // that no longer reproduces the remainder (a lossy trace round trip).
  constexpr double kEps = 1e-12;
  for (const auto& b : reqs_) {
    if (b.queue_s < -kEps || b.stall_s < -kEps || b.retry_s < -kEps ||
        b.wire_s < -kEps || b.service_s < -kEps) {
      return false;
    }
    const double remainder =
        b.total_s - b.queue_s - b.stall_s - b.retry_s - b.wire_s;
    if (b.service_s != remainder) return false;
  }
  return true;
}

void RequestBreakdownSink::write_table(std::ostream& os, std::size_t n) const {
  std::vector<const RequestBreakdown*> order;
  order.reserve(reqs_.size());
  for (const auto& b : reqs_) order.push_back(&b);
  std::sort(order.begin(), order.end(),
            [](const RequestBreakdown* a, const RequestBreakdown* b) {
              if (a->total_s != b->total_s) return a->total_s > b->total_s;
              return a->req < b->req;
            });
  if (order.size() > n) order.resize(n);
  os << "  req        client   srv      total_s      queue_s      stall_s"
        "      retry_s       wire_s    service_s ok\n";
  char buf[256];
  for (const RequestBreakdown* b : order) {
    std::snprintf(buf, sizeof(buf),
                  "  %-10llu %-8s %-3llu %12.9f %12.9f %12.9f %12.9f %12.9f "
                  "%12.9f %s\n",
                  static_cast<unsigned long long>(b->req), b->client.c_str(),
                  static_cast<unsigned long long>(b->server), b->total_s,
                  b->queue_s, b->stall_s, b->retry_s, b->wire_s, b->service_s,
                  b->ok ? "y" : "n");
    os << buf;
  }
  double tq = 0, ts = 0, tr = 0, tw = 0, tsvc = 0, tt = 0;
  for (const auto& b : reqs_) {
    tq += b.queue_s;
    ts += b.stall_s;
    tr += b.retry_s;
    tw += b.wire_s;
    tsvc += b.service_s;
    tt += b.total_s;
  }
  os << "  requests=" << reqs_.size() << " total=" << FmtG(tt)
     << " queue=" << FmtG(tq) << " stall=" << FmtG(ts) << " retry=" << FmtG(tr)
     << " wire=" << FmtG(tw) << " service=" << FmtG(tsvc) << '\n';
}

}  // namespace pdsi::obs
