#include "pdsi/consist/checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "pdsi/common/bytes.h"

namespace pdsi::consist {
namespace {

constexpr const char* kConsistCat = "consist";

/// Timestamp slack for the compact-trace round-trip: the text format
/// prints ts and dur with 9 fractional digits, so an end reconstructed
/// as ts + dur can drift ~1e-9 from an edge instant recorded at the same
/// virtual time. Acceptance checks (required/justified edge windows,
/// program order) widen by this; the violation-triggering time-overlap
/// test narrows by it. Real op separations are >= microseconds, so the
/// slack can neither hide a violation nor invent one.
constexpr double kTsSlack = 2e-9;

struct Op {
  std::size_t ev = 0;  ///< index into the input event vector
  std::string client;  ///< resolved track name
  std::uint64_t file = 0;
  std::uint64_t off = 0;
  std::uint64_t len = 0;
  std::uint64_t fp = 0;
  double start = 0.0;
  double end = 0.0;

  std::uint64_t hi() const { return off + len; }
  bool overlaps(const Op& o) const { return off < o.hi() && o.off < hi(); }
  bool same_interval(const Op& o) const { return off == o.off && len == o.len; }
  bool covers(const Op& o) const { return off <= o.off && hi() >= o.hi(); }
  bool time_overlaps(const Op& o) const {
    return start + kTsSlack < o.end && o.start + kTsSlack < end;
  }
};

std::uint64_t U64Arg(const obs::AnalysisEvent& e, const char* key) {
  return static_cast<std::uint64_t>(std::llround(e.arg(key, 0.0)));
}

/// Visibility-edge instants for one (file, client): ascending timestamps.
struct Edges {
  std::vector<double> opens, closes, syncs, pubs;
};

/// Any timestamp in `v` within [lo, hi] (inclusive, with round-trip slack)?
bool AnyIn(const std::vector<double>& v, double lo, double hi) {
  auto it = std::lower_bound(v.begin(), v.end(), lo - kTsSlack);
  return it != v.end() && *it <= hi + kTsSlack;
}

/// Largest timestamp in `v` that is <= hi (with round-trip slack); NaN
/// when none.
double LastAtOrBefore(const std::vector<double>& v, double hi) {
  auto it = std::upper_bound(v.begin(), v.end(), hi + kTsSlack);
  if (it == v.begin()) return std::nan("");
  return *(it - 1);
}

class Checker {
 public:
  Checker(const std::vector<obs::AnalysisEvent>& events, ConsistencyModel model)
      : events_(events), model_(model) {}

  CheckResult run() {
    index();
    CheckResult r;
    r.stats = stats_;
    // Single pass in canonical event order: the first violation discovered
    // is the first by (ts, track, seq), so verdicts are deterministic.
    for (const auto& op : ops_) {
      Violation v;
      bool bad = op.is_write ? check_write(op.op, &v) : check_read(op.op, &v);
      if (bad) {
        r.clean = false;
        r.first = v;
        r.stats = stats_;
        return r;
      }
    }
    r.stats = stats_;
    return r;
  }

 private:
  struct Parsed {
    Op op;
    bool is_write = false;
  };

  void index() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const auto& e = events_[i];
      if (e.cat != kConsistCat) continue;
      if (e.is_span() && (e.name == "write" || e.name == "read")) {
        Op op;
        op.ev = i;
        op.client = e.track;
        op.file = U64Arg(e, "file");
        op.off = U64Arg(e, "off");
        op.len = U64Arg(e, "len");
        op.fp = U64Arg(e, "fp");
        op.start = e.ts;
        op.end = e.end();
        bool is_write = e.name == "write";
        if (is_write) {
          writes_by_file_[op.file].push_back(op);
          ++stats_.writes;
        } else {
          ++stats_.reads;
        }
        ops_.push_back({op, is_write});
      } else if (!e.is_span()) {
        Edges& ed = edges_[{U64Arg(e, "file"), e.track}];
        if (e.name == "open") ed.opens.push_back(e.ts);
        else if (e.name == "close") ed.closes.push_back(e.ts);
        else if (e.name == "sync") ed.syncs.push_back(e.ts);
        else if (e.name == "pub") ed.pubs.push_back(e.ts);
      }
    }
    for (auto& [key, ed] : edges_) {
      std::sort(ed.opens.begin(), ed.opens.end());
      std::sort(ed.closes.begin(), ed.closes.end());
      std::sort(ed.syncs.begin(), ed.syncs.end());
      std::sort(ed.pubs.begin(), ed.pubs.end());
    }
  }

  const Edges& edges_for(std::uint64_t file, const std::string& client) {
    static const Edges kEmpty;
    auto it = edges_.find({file, client});
    return it == edges_.end() ? kEmpty : it->second;
  }

  /// Does `model_` oblige read R to observe write W? Program order always
  /// does; across clients the model's published edges decide. Every
  /// relaxed model's condition implies POSIX's (the close/sync instants
  /// it demands lie inside [W.end, R.start]), and MPI-IO's implies
  /// commit's — the lattice-monotonicity the property tests pin.
  bool required(const Op& w, const Op& r) {
    if (w.client == r.client) return w.end <= r.start + kTsSlack;
    switch (model_) {
      case ConsistencyModel::posix:
        return w.end <= r.start + kTsSlack;
      case ConsistencyModel::session: {
        // Writer closed after the write, reader (re)opened after that close
        // and before the read.
        double open = LastAtOrBefore(edges_for(r.file, r.client).opens, r.start);
        if (std::isnan(open)) return false;
        return AnyIn(edges_for(w.file, w.client).closes, w.end, open);
      }
      case ConsistencyModel::commit:
        // Writer synced after the write and before the read began.
        return AnyIn(edges_for(w.file, w.client).syncs, w.end, r.start);
      case ConsistencyModel::mpiio: {
        // Writer synced, then the reader synced, then the read began.
        double rsync = LastAtOrBefore(edges_for(r.file, r.client).syncs, r.start);
        if (std::isnan(rsync)) return false;
        return AnyIn(edges_for(w.file, w.client).syncs, w.end, rsync);
      }
    }
    return false;
  }

  /// May read R legally observe write W? Yes when program order delivers
  /// it, when the two race in virtual time (unordered — either outcome is
  /// legal), or when a recorded `pub` edge published W before R began.
  /// This is model-independent: `pub` is emitted wherever the *recording*
  /// model published, so content from an edge the trace does not contain
  /// is exactly what this flags.
  bool justified(const Op& w, const Op& r) {
    if (w.client == r.client && w.end <= r.start + kTsSlack) return true;
    if (w.time_overlaps(r)) return true;
    return AnyIn(edges_for(w.file, w.client).pubs, w.end, r.start);
  }

  bool check_write(const Op& w, Violation* out) {
    if (model_ != ConsistencyModel::posix) return false;
    // POSIX: conflicting (byte-overlapping, cross-client) extent ops must
    // be serialised by the lock protocol — overlap in virtual time means
    // the serialisation failed.
    const auto& all = writes_by_file_[w.file];
    for (const Op& e : all) {
      if (e.ev >= w.ev) break;
      if (e.client == w.client || !e.overlaps(w)) continue;
      ++stats_.conflict_pairs;
      if (e.time_overlaps(w)) {
        out->kind = ViolationKind::conflicting_writes;
        out->op_a = e.ev;
        out->op_b = w.ev;
        std::ostringstream d;
        d << "cross-client writes overlap bytes ["
          << std::max(e.off, w.off) << "," << std::min(e.hi(), w.hi())
          << ") and virtual time";
        out->detail = d.str();
        return true;
      }
    }
    return false;
  }

  bool check_read(const Op& r, Violation* out) {
    const auto& all = writes_by_file_[r.file];
    // Classify every write touching the read's byte interval. Content
    // reasoning via fingerprints is only sound when candidate writes cover
    // exactly the read's interval; anything partial makes the observable
    // content a composite overlay we cannot reconstruct from per-op
    // hashes, so those reads are skipped (counted, never flagged).
    const Op* w_req = nullptr;        // newest required exact-interval write
    const Op* last_match = nullptr;   // newest exact write with fp == r.fp
    bool any_match_fresh_enough = false;
    bool any_match_justified = false;
    bool composite = false;
    const Op* last_overlap = nullptr;
    bool torn_possible = false;
    for (const Op& w : all) {
      if (!w.overlaps(r)) continue;
      last_overlap = &w;
      if (!w.same_interval(r)) {
        composite = true;
        continue;
      }
      if (w.time_overlaps(r)) torn_possible = true;
      if (required(w, r)) w_req = &w;  // event order == version order
      if (w.fp == r.fp) {
        last_match = &w;
        if (justified(w, r)) any_match_justified = true;
      }
    }
    if (composite) {
      ++stats_.composite_skips;
      return false;
    }
    const bool zero_ok = r.fp == ZeroFingerprint(r.len);
    if (last_match != nullptr) {
      ++stats_.content_checks;
      // Freshness: the newest matching write must not predate the newest
      // required one.
      any_match_fresh_enough = w_req == nullptr || last_match->ev >= w_req->ev;
      if (!any_match_fresh_enough) {
        out->kind = ViolationKind::stale_read;
        out->op_a = w_req->ev;
        out->op_b = r.ev;
        out->detail = "read returned content older than a required write";
        return true;
      }
      if (!any_match_justified) {
        out->kind = ViolationKind::unpublished_read;
        out->op_a = last_match->ev;
        out->op_b = r.ev;
        out->detail =
            "read observed a write no publish edge, program order, or "
            "concurrency justifies";
        return true;
      }
      return false;
    }
    // No matching write. A hole read is fine when nothing was required;
    // with a required write outstanding the hole is stale. A fingerprint
    // matching neither any write nor the hole is corrupt — unless a
    // racing write makes a torn composite possible.
    if (zero_ok) {
      ++stats_.content_checks;
      if (w_req != nullptr) {
        out->kind = ViolationKind::stale_read;
        out->op_a = w_req->ev;
        out->op_b = r.ev;
        out->detail = "read returned the unwritten hole after a required write";
        return true;
      }
      return false;
    }
    if (torn_possible) {
      ++stats_.composite_skips;
      return false;
    }
    ++stats_.content_checks;
    out->kind = ViolationKind::corrupt_read;
    out->op_a = w_req != nullptr
                    ? w_req->ev
                    : (last_overlap != nullptr ? last_overlap->ev : r.ev);
    out->op_b = r.ev;
    out->detail = "read fingerprint matches no write and no hole";
    return true;
  }

  friend bool pdsi::consist::RequiredVisible(
      const std::vector<obs::AnalysisEvent>&, ConsistencyModel, std::size_t,
      std::size_t);

  const std::vector<obs::AnalysisEvent>& events_;
  ConsistencyModel model_;
  std::vector<Parsed> ops_;
  std::map<std::uint64_t, std::vector<Op>> writes_by_file_;
  std::map<std::pair<std::uint64_t, std::string>, Edges> edges_;
  CheckStats stats_;
};

}  // namespace

std::string_view ViolationKindName(ViolationKind k) {
  switch (k) {
    case ViolationKind::stale_read: return "stale_read";
    case ViolationKind::unpublished_read: return "unpublished_read";
    case ViolationKind::corrupt_read: return "corrupt_read";
    case ViolationKind::conflicting_writes: return "conflicting_writes";
  }
  return "?";
}

CheckResult CheckConsistency(const std::vector<obs::AnalysisEvent>& events,
                             ConsistencyModel model) {
  return Checker(events, model).run();
}

bool RequiredVisible(const std::vector<obs::AnalysisEvent>& events,
                     ConsistencyModel model, std::size_t write_ev,
                     std::size_t read_ev) {
  Checker c(events, model);
  c.index();
  const Op* w = nullptr;
  const Op* r = nullptr;
  for (const auto& p : c.ops_) {
    if (p.op.ev == write_ev && p.is_write) w = &p.op;
    if (p.op.ev == read_ev && !p.is_write) r = &p.op;
  }
  if (w == nullptr || r == nullptr) return false;
  return c.required(*w, *r);
}

std::string FormatViolation(const Violation& v,
                            const std::vector<obs::AnalysisEvent>& events) {
  std::ostringstream os;
  os << ViolationKindName(v.kind) << ": ";
  auto describe = [&](std::size_t i) {
    if (i >= events.size()) {
      os << "<op " << i << ">";
      return;
    }
    const auto& e = events[i];
    os << e.track << " " << e.name << " file" << U64Arg(e, "file") << " ["
       << U64Arg(e, "off") << "," << U64Arg(e, "off") + U64Arg(e, "len")
       << ") @" << e.ts;
  };
  describe(v.op_a);
  os << " vs ";
  describe(v.op_b);
  os << " — " << v.detail;
  return os.str();
}

std::uint64_t ZeroFingerprint(std::uint64_t len) {
  thread_local std::map<std::uint64_t, std::uint64_t> cache;
  auto it = cache.find(len);
  if (it != cache.end()) return it->second;
  Bytes zeros(static_cast<std::size_t>(len), 0);
  std::uint64_t fp = HashBytes(zeros) & 0xffffffffULL;
  cache.emplace(len, fp);
  return fp;
}

}  // namespace pdsi::consist
