#include "pdsi/consist/monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pdsi::consist {
namespace {

constexpr const char* kConsistCat = "consist";

/// Same round-trip slack as checker.cc (kept in lockstep): acceptance
/// windows widen by it, the violation-triggering time-overlap narrows.
constexpr double kTsSlack = 2e-9;

std::uint64_t U64Arg(const obs::AnalysisEvent& e, const char* key) {
  return static_cast<std::uint64_t>(std::llround(e.arg(key, 0.0)));
}

bool RangesOverlap(std::uint64_t off_a, std::uint64_t len_a, std::uint64_t off_b,
                   std::uint64_t len_b) {
  return off_a < off_b + len_b && off_b < off_a + len_a;
}

/// Largest instant <= hi (with slack); NaN when none. Mirrors checker.cc.
double LastAtOrBefore(const std::vector<double>& v, double hi) {
  auto it = std::upper_bound(v.begin(), v.end(), hi + kTsSlack);
  if (it == v.begin()) return std::nan("");
  return *(it - 1);
}

}  // namespace

void ConsistencyMonitor::on_event(const obs::AnalysisEvent& e,
                                  std::uint64_t index) {
  last_ts_ = std::max(last_ts_, e.ts);
  if (e.cat == kConsistCat) {
    if (e.is_span()) {
      if (e.name == "write") {
        on_write(e, static_cast<std::size_t>(index));
      } else if (e.name == "read") {
        on_read(e, static_cast<std::size_t>(index));
      }
    } else {
      on_edge(e);
    }
  }
  finalize_ready(false);
}

void ConsistencyMonitor::finish(double now) {
  last_ts_ = std::max(last_ts_, now);
  finalize_ready(true);
}

std::size_t ConsistencyMonitor::retained() const {
  return live_writes_ + pending_.size();
}

obs::Alarm ConsistencyMonitor::alarm() const {
  obs::Alarm a;
  a.ts = last_ts_;
  a.kind = "consistency";
  a.key = std::string(ViolationKindName(first_.kind));
  a.value = static_cast<double>(first_.op_a);
  a.threshold = static_cast<double>(first_.op_b);
  a.detail = first_.detail;
  return a;
}

void ConsistencyMonitor::note_retained() {
  peak_retained_ = std::max(peak_retained_, retained());
}

double ConsistencyMonitor::horizon() const {
  double h = last_ts_;
  if (!pending_.empty()) h = std::min(h, pending_.front().start);
  return h;
}

void ConsistencyMonitor::decide(std::size_t ev, bool bad, const Violation& v) {
  auto it = std::lower_bound(
      queue_.begin(), queue_.end(), ev,
      [](const Slot& s, std::size_t e) { return s.ev < e; });
  if (it == queue_.end() || it->ev != ev) return;
  it->decided = true;
  it->bad = bad;
  it->v = v;
  advance_front();
}

void ConsistencyMonitor::advance_front() {
  // Verdicts surface only from the queue front with every earlier op
  // decided, so the latched first violation is the batch checker's (the
  // first in op order), not merely the first discovered.
  while (!queue_.empty() && queue_.front().decided) {
    if (queue_.front().bad && !violated_) {
      violated_ = true;
      first_ = queue_.front().v;
    }
    queue_.pop_front();
  }
}

void ConsistencyMonitor::prune_edges(ReaderEdges& re) const {
  const double h = horizon();
  auto prune = [h](std::vector<double>& v) {
    // Entries below the horizon can never be the LastAtOrBefore answer
    // for any still-possible read once a newer sub-horizon entry exists.
    while (v.size() >= 2 && v[1] <= h - kTsSlack) v.erase(v.begin());
  };
  prune(re.opens);
  prune(re.syncs);
}

bool ConsistencyMonitor::required(const LiveWrite& w, const PendingRead& r,
                                  const FileState& fs) const {
  if (w.client == r.client) return w.end <= r.start + kTsSlack;
  switch (model_) {
    case ConsistencyModel::posix:
      return w.end <= r.start + kTsSlack;
    case ConsistencyModel::session: {
      auto it = fs.readers.find(r.client);
      if (it == fs.readers.end()) return false;
      const double open = LastAtOrBefore(it->second.opens, r.start);
      if (std::isnan(open)) return false;
      return w.first_close >= 0.0 && w.first_close <= open + kTsSlack;
    }
    case ConsistencyModel::commit:
      return w.first_sync >= 0.0 && w.first_sync <= r.start + kTsSlack;
    case ConsistencyModel::mpiio: {
      auto it = fs.readers.find(r.client);
      if (it == fs.readers.end()) return false;
      const double rsync = LastAtOrBefore(it->second.syncs, r.start);
      if (std::isnan(rsync)) return false;
      return w.first_sync >= 0.0 && w.first_sync <= rsync + kTsSlack;
    }
  }
  return false;
}

bool ConsistencyMonitor::justified(const LiveWrite& w,
                                   const PendingRead& r) const {
  if (w.client == r.client && w.end <= r.start + kTsSlack) return true;
  if (w.start + kTsSlack < r.end && r.start + kTsSlack < w.end) return true;
  return w.first_pub >= 0.0 && w.first_pub <= r.start + kTsSlack;
}

void ConsistencyMonitor::on_write(const obs::AnalysisEvent& e,
                                  std::size_t index) {
  ++stats_.writes;
  LiveWrite w;
  w.ev = index;
  w.client = e.track;
  w.start = e.ts;
  w.end = e.end();
  w.fp = U64Arg(e, "fp");
  const std::uint64_t file = U64Arg(e, "file");
  const std::uint64_t off = U64Arg(e, "off");
  const std::uint64_t len = U64Arg(e, "len");
  FileState& fs = files_[file];

  queue_.push_back(Slot{index, false, false, {}});
  Violation v;
  bool bad = false;
  if (model_ == ConsistencyModel::posix) {
    // POSIX conflict check against earlier cross-client overlapping
    // writes, in event order like the batch pass. Retired writes ended
    // before the horizon, so they cannot time-overlap this one — live
    // writes are the complete candidate set.
    std::vector<const LiveWrite*> earlier;
    for (const auto& [key, is] : fs.intervals) {
      if (!RangesOverlap(key.first, key.second, off, len)) continue;
      for (const LiveWrite& ew : is.live) {
        if (ew.ev < index && ew.client != w.client) earlier.push_back(&ew);
      }
    }
    std::sort(earlier.begin(), earlier.end(),
              [](const LiveWrite* a, const LiveWrite* b) { return a->ev < b->ev; });
    for (const LiveWrite* ew : earlier) {
      ++stats_.conflict_pairs;
      if (ew->start + kTsSlack < w.end && w.start + kTsSlack < ew->end) {
        v.kind = ViolationKind::conflicting_writes;
        v.op_a = ew->ev;
        v.op_b = index;
        // Byte range needs the earlier write's interval; find it back.
        std::uint64_t eo = off, eh = off + len;
        for (const auto& [key, is] : fs.intervals) {
          for (const LiveWrite& cand : is.live) {
            if (&cand == ew) {
              eo = std::max(key.first, off);
              eh = std::min(key.first + key.second, off + len);
            }
          }
        }
        std::ostringstream d;
        d << "cross-client writes overlap bytes [" << eo << "," << eh
          << ") and virtual time";
        v.detail = d.str();
        bad = true;
        break;
      }
    }
  }
  decide(index, bad, v);

  auto& is = fs.intervals[{off, len}];
  is.off = off;
  is.len = len;
  feed_deferred(w, is, file);
  is.live.push_back(w);
  ++live_writes_;
  note_retained();
  try_retire(is, file);
}

void ConsistencyMonitor::on_read(const obs::AnalysisEvent& e,
                                 std::size_t index) {
  ++stats_.reads;
  PendingRead r;
  r.ev = index;
  r.client = e.track;
  r.file = U64Arg(e, "file");
  r.off = U64Arg(e, "off");
  r.len = U64Arg(e, "len");
  r.fp = U64Arg(e, "fp");
  r.start = e.ts;
  r.end = e.end();
  queue_.push_back(Slot{index, false, false, {}});
  pending_.push_back(std::move(r));
  note_retained();
}

void ConsistencyMonitor::on_edge(const obs::AnalysisEvent& e) {
  const std::uint64_t file = U64Arg(e, "file");
  FileState& fs = files_[file];
  const double ts = e.ts;
  if (e.name == "open") {
    ReaderEdges& re = fs.readers[e.track];
    re.opens.push_back(ts);
    prune_edges(re);
    return;
  }
  if (e.name == "sync") {
    ReaderEdges& re = fs.readers[e.track];
    re.syncs.push_back(ts);
    prune_edges(re);
  }
  // Writer-side firsts: the earliest edge of each type at or after a
  // write's end is the only instant required()/justified() consult.
  for (auto& [key, is] : fs.intervals) {
    for (LiveWrite& w : is.live) {
      if (w.client != e.track || ts < w.end - kTsSlack) continue;
      if (e.name == "close" && w.first_close < 0.0) w.first_close = ts;
      else if (e.name == "sync" && w.first_sync < 0.0) w.first_sync = ts;
      else if (e.name == "pub" && w.first_pub < 0.0) w.first_pub = ts;
    }
    if (e.name == "pub") {
      for (Marker& m : is.markers) {
        if (m.first_pub >= 0.0) continue;
        auto it = m.client_end.find(e.track);
        if (it != m.client_end.end() && ts >= it->second - kTsSlack) {
          m.first_pub = ts;
        }
      }
    }
  }
}

void ConsistencyMonitor::try_retire(IntervalState& is, std::uint64_t file) {
  const FileState& fs = files_[file];
  while (is.live.size() >= 2) {
    const LiveWrite& w = is.live.front();
    const double h = horizon();
    // The horizon must have passed: no still-possible read can race or
    // time-overlap the front write once h > w.end.
    if (!(w.end + kTsSlack < h)) break;
    // A newer live write must supersede it as the required version for
    // every possible future read under the model.
    bool superseded = false;
    for (std::size_t k = 1; k < is.live.size() && !superseded; ++k) {
      const LiveWrite& n = is.live[k];
      if (n.end > h) continue;  // program order not yet guaranteed
      switch (model_) {
        case ConsistencyModel::posix:
          superseded = true;
          break;
        case ConsistencyModel::session: {
          if (n.first_close < 0.0) break;
          bool all_reopened = true;
          for (const auto& [client, re] : fs.readers) {
            if (client == n.client || re.opens.empty()) continue;
            if (re.opens.back() < n.first_close - kTsSlack) {
              all_reopened = false;
              break;
            }
          }
          // A known client that never reopens keeps the front write
          // alive — conservative, never wrong.
          superseded = all_reopened;
          break;
        }
        case ConsistencyModel::commit:
          superseded = n.first_sync >= 0.0 && n.first_sync <= h;
          break;
        case ConsistencyModel::mpiio: {
          if (n.first_sync < 0.0) break;
          bool all_synced = true;
          for (const auto& [client, re] : fs.readers) {
            if (client == n.client || re.syncs.empty()) continue;
            if (re.syncs.back() < n.first_sync - kTsSlack) {
              all_synced = false;
              break;
            }
          }
          superseded = all_synced;
          break;
        }
      }
    }
    if (!superseded) break;
    // Retire to a per-fingerprint marker: enough to classify a future
    // read that returns this (now stale) content like the batch pass.
    Marker* m = nullptr;
    for (Marker& cand : is.markers) {
      if (cand.fp == w.fp) {
        m = &cand;
        break;
      }
    }
    if (m == nullptr) {
      is.markers.push_back(Marker{});
      m = &is.markers.back();
      m->fp = w.fp;
    }
    m->ev = std::max(m->ev, w.ev);
    auto [it, inserted] = m->client_end.emplace(w.client, w.end);
    if (!inserted) it->second = std::min(it->second, w.end);
    if (w.first_pub >= 0.0 &&
        (m->first_pub < 0.0 || w.first_pub < m->first_pub)) {
      m->first_pub = w.first_pub;
    }
    is.live.pop_front();
    --live_writes_;
  }
}

void ConsistencyMonitor::feed_deferred(const LiveWrite& w,
                                       const IntervalState& is,
                                       std::uint64_t file) {
  // A deferred read waits for the write whose content it returned. The
  // batch checker scans the whole trace, so a later matching write of
  // the same interval resolves the read as unpublished (it cannot be
  // justified: it neither raced the read nor published before it began);
  // a later partial overlap makes the read a composite skip.
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingRead& r = *it;
    if (!r.deferred || r.file != file ||
        !RangesOverlap(r.off, r.len, is.off, is.len)) {
      ++it;
      continue;
    }
    if (is.off != r.off || is.len != r.len) {
      ++stats_.composite_skips;
      decide(r.ev, false, {});
      it = pending_.erase(it);
      continue;
    }
    if (w.fp == r.fp) {
      ++stats_.content_checks;
      Violation v;
      v.kind = ViolationKind::unpublished_read;
      v.op_a = w.ev;
      v.op_b = r.ev;
      v.detail =
          "read observed a write no publish edge, program order, or "
          "concurrency justifies";
      decide(r.ev, true, v);
      it = pending_.erase(it);
      continue;
    }
    r.has_overlap = true;
    r.last_overlap_ev = w.ev;
    ++it;
  }
}

void ConsistencyMonitor::finalize_ready(bool all) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingRead& r = *it;
    if (!r.deferred && (all || last_ts_ > r.end + kTsSlack)) {
      finalize_read(r);
      if (!r.deferred) {
        it = pending_.erase(it);
        continue;
      }
    }
    if (r.deferred && all) {
      // End of stream: no matching write ever arrived.
      ++stats_.content_checks;
      Violation v;
      v.kind = ViolationKind::corrupt_read;
      v.op_a = r.has_w_req ? r.w_req_ev
                           : (r.has_overlap ? r.last_overlap_ev : r.ev);
      v.op_b = r.ev;
      v.detail = "read fingerprint matches no write and no hole";
      decide(r.ev, true, v);
      it = pending_.erase(it);
      continue;
    }
    ++it;
  }
}

void ConsistencyMonitor::finalize_read(PendingRead& r) {
  auto fit = files_.find(r.file);
  const FileState* fs = fit == files_.end() ? nullptr : &fit->second;

  // Composite: any differently-shaped write history overlapping the
  // read's bytes makes the observable content an overlay per-op hashes
  // cannot reconstruct — skipped, exactly like the batch pass.
  const IntervalState* same = nullptr;
  if (fs != nullptr) {
    for (const auto& [key, is] : fs->intervals) {
      if (!RangesOverlap(key.first, key.second, r.off, r.len)) continue;
      if (key.first == r.off && key.second == r.len) {
        same = &is;
        continue;
      }
      ++stats_.composite_skips;
      decide(r.ev, false, {});
      return;
    }
  }

  bool torn = false;
  bool has_w_req = false;
  std::size_t w_req_ev = 0;
  bool has_match = false;
  std::size_t match_ev = 0;
  bool match_justified = false;
  bool has_overlap = false;
  std::size_t overlap_ev = 0;
  if (same != nullptr) {
    for (const LiveWrite& w : same->live) {
      has_overlap = true;
      overlap_ev = w.ev;  // event order == newest-last
      if (w.start + kTsSlack < r.end && r.start + kTsSlack < w.end) torn = true;
      if (required(w, r, *fs)) {
        has_w_req = true;
        w_req_ev = w.ev;
      }
      if (w.fp == r.fp) {
        has_match = true;
        match_ev = w.ev;
        if (justified(w, r)) match_justified = true;
      }
    }
    for (const Marker& m : same->markers) {
      // Markers are all older than live writes; they only decide overlap
      // recency when no live write exists.
      if (same->live.empty() && (!has_overlap || m.ev > overlap_ev)) {
        has_overlap = true;
        overlap_ev = m.ev;
      }
      if (m.fp != r.fp) continue;
      if (!has_match) {
        // A live fp-match is always newer than any marker, so the
        // freshness event index stays the live one when present.
        has_match = true;
        match_ev = m.ev;
      }
      // Justification ORs over every match, retired ones included.
      // Program order holds for a marker writer (the write ended before
      // the horizon, hence before this read began); otherwise a publish.
      if (m.client_end.count(r.client) != 0 ||
          (m.first_pub >= 0.0 && m.first_pub <= r.start + kTsSlack)) {
        match_justified = true;
      }
    }
  }

  if (has_match) {
    ++stats_.content_checks;
    Violation v;
    if (has_w_req && match_ev < w_req_ev) {
      v.kind = ViolationKind::stale_read;
      v.op_a = w_req_ev;
      v.op_b = r.ev;
      v.detail = "read returned content older than a required write";
      decide(r.ev, true, v);
      return;
    }
    if (!match_justified) {
      v.kind = ViolationKind::unpublished_read;
      v.op_a = match_ev;
      v.op_b = r.ev;
      v.detail =
          "read observed a write no publish edge, program order, or "
          "concurrency justifies";
      decide(r.ev, true, v);
      return;
    }
    decide(r.ev, false, {});
    return;
  }
  if (r.fp == ZeroFingerprint(r.len)) {
    ++stats_.content_checks;
    if (has_w_req) {
      Violation v;
      v.kind = ViolationKind::stale_read;
      v.op_a = w_req_ev;
      v.op_b = r.ev;
      v.detail = "read returned the unwritten hole after a required write";
      decide(r.ev, true, v);
      return;
    }
    decide(r.ev, false, {});
    return;
  }
  if (torn) {
    ++stats_.composite_skips;
    decide(r.ev, false, {});
    return;
  }
  // No match anywhere yet: defer for a possible future matching write
  // (the batch checker's whole-trace scan), deciding corrupt only at
  // end of stream. Freeze the batch op_a candidates now.
  r.deferred = true;
  r.has_w_req = has_w_req;
  r.w_req_ev = w_req_ev;
  r.has_overlap = has_overlap;
  r.last_overlap_ev = overlap_ev;
}

}  // namespace pdsi::consist
