#include "pdsi/consist/mutate.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace pdsi::consist {
namespace {

struct MOp {
  std::size_t ev = 0;
  bool is_write = false;
  std::string client;
  std::uint64_t file = 0, off = 0, len = 0, fp = 0;
  double start = 0.0, end = 0.0;

  std::uint64_t hi() const { return off + len; }
  bool overlaps(const MOp& o) const { return off < o.hi() && o.off < hi(); }
  bool same_interval(const MOp& o) const {
    return off == o.off && len == o.len;
  }
  bool time_overlaps(const MOp& o) const {
    return start < o.end && o.start < end;
  }
};

struct MEdge {
  std::size_t ev = 0;
  std::string client;
  std::string name;
  std::uint64_t file = 0;
  double ts = 0.0;
};

std::uint64_t U64Arg(const obs::AnalysisEvent& e, const char* key) {
  return static_cast<std::uint64_t>(std::llround(e.arg(key, 0.0)));
}

void SetArg(obs::AnalysisEvent* e, const std::string& key, double v) {
  for (auto& [k, val] : e->args) {
    if (k == key) {
      val = v;
      return;
    }
  }
  e->args.emplace_back(key, v);
}

void Extract(const std::vector<obs::AnalysisEvent>& events,
             std::vector<MOp>* ops, std::vector<MEdge>* edges) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.cat != "consist") continue;
    if (e.is_span() && (e.name == "write" || e.name == "read")) {
      MOp op;
      op.ev = i;
      op.is_write = e.name == "write";
      op.client = e.track;
      op.file = U64Arg(e, "file");
      op.off = U64Arg(e, "off");
      op.len = U64Arg(e, "len");
      op.fp = U64Arg(e, "fp");
      op.start = e.ts;
      op.end = e.end();
      ops->push_back(op);
    } else if (!e.is_span() && edges != nullptr) {
      MEdge ed;
      ed.ev = i;
      ed.client = e.track;
      ed.name = e.name;
      ed.file = U64Arg(e, "file");
      ed.ts = e.ts;
      edges->push_back(ed);
    }
  }
}

/// SplitMix64 scramble so adjacent seeds pick unrelated candidates.
std::uint64_t Mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t Pick(std::uint64_t seed, std::size_t n) {
  return static_cast<std::size_t>(Mix(seed) % n);
}

/// Stable canonical re-sort by (ts, track). `tracked` entries (old
/// indices) are rewritten to the corresponding new indices.
void Canonicalize(std::vector<obs::AnalysisEvent>* events,
                  std::vector<std::size_t*> tracked) {
  std::vector<std::size_t> order(events->size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto& ea = (*events)[a];
                     const auto& eb = (*events)[b];
                     if (ea.ts != eb.ts) return ea.ts < eb.ts;
                     return ea.track < eb.track;
                   });
  std::vector<std::size_t> pos(events->size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  std::vector<obs::AnalysisEvent> sorted;
  sorted.reserve(events->size());
  for (std::size_t i : order) sorted.push_back(std::move((*events)[i]));
  *events = std::move(sorted);
  for (std::size_t* t : tracked) *t = pos[*t];
}

bool AnyPubIn(const std::vector<MEdge>& edges, std::uint64_t file,
              const std::string& client, double lo, double hi,
              std::size_t skip_ev = static_cast<std::size_t>(-1)) {
  for (const auto& e : edges) {
    if (e.ev == skip_ev || e.name != "pub") continue;
    if (e.file == file && e.client == client && e.ts >= lo && e.ts <= hi)
      return true;
  }
  return false;
}

/// Mirrors the checker's justification rule, optionally with one pub
/// edge deleted — used to predict which read the checker names first.
bool Justified(const MOp& w, const MOp& r, const std::vector<MEdge>& edges,
               std::size_t skip_pub_ev = static_cast<std::size_t>(-1)) {
  if (w.client == r.client && w.end <= r.start) return true;
  if (w.time_overlaps(r)) return true;
  return AnyPubIn(edges, w.file, w.client, w.end, r.start, skip_pub_ev);
}

double MaxEnd(const std::vector<obs::AnalysisEvent>& events) {
  double m = 0.0;
  for (const auto& e : events) m = std::max(m, e.end());
  return m;
}

}  // namespace

PlantedViolation ReorderWritePastClose(std::vector<obs::AnalysisEvent>* events,
                                       std::uint64_t seed) {
  std::vector<MOp> ops;
  std::vector<MEdge> edges;
  Extract(*events, &ops, &edges);
  // Eligible: a write that (a) was published by a later close of its own
  // client, (b) has at least one observing read, and (c) carries a
  // fingerprint unique among writes (so attribution is unambiguous).
  std::vector<std::size_t> cands;  // index into ops
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const MOp& w = ops[i];
    if (!w.is_write) continue;
    bool closed = false;
    for (const auto& e : edges)
      if (e.name == "close" && e.file == w.file && e.client == w.client &&
          e.ts >= w.end)
        closed = true;
    if (!closed) continue;
    bool unique = true, observed = false;
    for (const MOp& o : ops) {
      if (o.is_write && o.ev != w.ev && o.file == w.file && o.fp == w.fp &&
          o.same_interval(w))
        unique = false;
      if (!o.is_write && o.file == w.file && o.same_interval(w) &&
          o.fp == w.fp)
        observed = true;
    }
    if (unique && observed) cands.push_back(i);
  }
  if (cands.empty()) return {};
  const MOp w = ops[cands[Pick(seed, cands.size())]];

  std::size_t w_new = w.ev;
  (*events)[w.ev].ts = MaxEnd(*events) + 1.0;
  // The observing reads' positions are unchanged (only the write moved,
  // to the very end); the earliest observer is who the checker names.
  std::size_t r_new = static_cast<std::size_t>(-1);
  for (const MOp& o : ops) {
    if (!o.is_write && o.file == w.file && o.same_interval(w) &&
        o.fp == w.fp) {
      r_new = std::min(r_new, o.ev);
    }
  }
  Canonicalize(events, {&w_new, &r_new});

  PlantedViolation p;
  p.applied = true;
  p.kind = ViolationKind::unpublished_read;
  p.op_a = w_new;
  p.op_b = r_new;
  std::ostringstream d;
  d << "moved " << w.client << " write file" << w.file << " [" << w.off << ","
    << w.hi() << ") past its publishing close";
  p.what = d.str();
  return p;
}

PlantedViolation DropSyncEdge(std::vector<obs::AnalysisEvent>* events,
                              std::uint64_t seed) {
  std::vector<MOp> ops;
  std::vector<MEdge> edges;
  Extract(*events, &ops, &edges);
  // Eligible: a pub co-located with a sync (commit/mpiio publish points)
  // whose deletion leaves some observed write with no justification.
  // Predict, per candidate, the first read the checker would flag.
  struct Cand {
    std::size_t pub_ev, sync_ev, w_ev, r_ev;
  };
  std::vector<Cand> cands;
  for (const auto& pub : edges) {
    if (pub.name != "pub") continue;
    std::size_t sync_ev = static_cast<std::size_t>(-1);
    for (const auto& s : edges)
      if (s.name == "sync" && s.file == pub.file && s.client == pub.client &&
          s.ts == pub.ts)
        sync_ev = s.ev;
    if (sync_ev == static_cast<std::size_t>(-1)) continue;
    // First read (event order) left unjustified once `pub` is gone.
    std::size_t flagged_r = static_cast<std::size_t>(-1);
    std::size_t flagged_w = static_cast<std::size_t>(-1);
    for (const MOp& r : ops) {
      if (r.is_write) continue;
      const MOp* last_match = nullptr;
      bool any_justified = false;
      for (const MOp& w : ops) {
        if (!w.is_write || w.file != r.file || !w.same_interval(r) ||
            w.fp != r.fp)
          continue;
        last_match = &w;
        if (Justified(w, r, edges, pub.ev)) any_justified = true;
      }
      if (last_match != nullptr && !any_justified) {
        flagged_r = r.ev;
        flagged_w = last_match->ev;
        break;
      }
    }
    if (flagged_r != static_cast<std::size_t>(-1))
      cands.push_back({pub.ev, sync_ev, flagged_w, flagged_r});
  }
  if (cands.empty()) return {};
  Cand c = cands[Pick(seed, cands.size())];

  // Erase the two instants (higher index first so the lower stays valid)
  // and re-map the expected pair.
  std::size_t first = std::min(c.pub_ev, c.sync_ev);
  std::size_t second = std::max(c.pub_ev, c.sync_ev);
  events->erase(events->begin() + second);
  events->erase(events->begin() + first);
  auto remap = [&](std::size_t i) {
    return i - (i > first ? 1 : 0) - (i > second ? 1 : 0);
  };
  PlantedViolation p;
  p.applied = true;
  p.kind = ViolationKind::unpublished_read;
  p.op_a = remap(c.w_ev);
  p.op_b = remap(c.r_ev);
  p.what = "dropped a sync edge (sync + co-located pub)";
  return p;
}

PlantedViolation SpliceStaleRead(std::vector<obs::AnalysisEvent>* events,
                                 ConsistencyModel model, std::uint64_t seed) {
  std::vector<MOp> ops;
  Extract(*events, &ops, nullptr);
  // Eligible: a read that returned the newest model-required write of its
  // exact interval, with no partial-overlap writes muddying the content
  // (the checker skips composite reads) and no write racing it in time.
  struct Cand {
    std::size_t r_ev, req_ev;
    std::uint64_t stale_fp;
    bool from_hole;
  };
  std::vector<Cand> cands;
  for (const MOp& r : ops) {
    if (r.is_write) continue;
    const MOp* w_req = nullptr;
    bool composite = false, racing = false;
    for (const MOp& w : ops) {
      if (!w.is_write || w.file != r.file || !w.overlaps(r)) continue;
      if (!w.same_interval(r)) {
        composite = true;
        break;
      }
      if (w.time_overlaps(r)) racing = true;
      if (RequiredVisible(*events, model, w.ev, r.ev)) w_req = &w;
    }
    if (composite || racing || w_req == nullptr || w_req->fp != r.fp)
      continue;
    // Stale content: the newest older same-interval write, else the hole.
    const MOp* older = nullptr;
    for (const MOp& w : ops) {
      if (w.is_write && w.file == r.file && w.same_interval(r) &&
          w.ev < w_req->ev && w.fp != w_req->fp)
        older = &w;
    }
    std::uint64_t stale_fp =
        older != nullptr ? older->fp : ZeroFingerprint(r.len);
    // The spliced fingerprint must not be as fresh as the required write.
    bool fresh_collision = false;
    for (const MOp& w : ops)
      if (w.is_write && w.file == r.file && w.same_interval(r) &&
          w.fp == stale_fp && w.ev >= w_req->ev)
        fresh_collision = true;
    if (fresh_collision || stale_fp == r.fp) continue;
    cands.push_back({r.ev, w_req->ev, stale_fp, older == nullptr});
  }
  if (cands.empty()) return {};
  Cand c = cands[Pick(seed, cands.size())];

  SetArg(&(*events)[c.r_ev], "fp", static_cast<double>(c.stale_fp));
  // No timestamps changed, so indices are already canonical.
  PlantedViolation p;
  p.applied = true;
  p.kind = ViolationKind::stale_read;
  p.op_a = c.req_ev;
  p.op_b = c.r_ev;
  p.what = c.from_hole ? "spliced read back to the unwritten hole"
                       : "spliced read back to a superseded write";
  return p;
}

PlantedViolation OverlapConflictingWrites(std::vector<obs::AnalysisEvent>* events,
                                          std::uint64_t seed) {
  std::vector<MOp> ops;
  Extract(*events, &ops, nullptr);
  // Eligible: serialised cross-client byte-overlapping write pairs.
  struct Cand {
    std::size_t w1, w2;  // index into ops, event order w1 < w2
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      const MOp& a = ops[i];
      const MOp& b = ops[j];
      if (a.is_write && b.is_write && a.client != b.client &&
          a.file == b.file && a.overlaps(b) && !a.time_overlaps(b) &&
          a.end > a.start)
        cands.push_back({i, j});
    }
  }
  if (cands.empty()) return {};
  Cand c = cands[Pick(seed, cands.size())];
  const MOp w1 = ops[c.w1];
  MOp w2 = ops[c.w2];

  // Drop the later write into the middle of the earlier one's span: they
  // now overlap in virtual time while both claim the same bytes.
  double new_ts = w1.start + (w1.end - w1.start) * 0.5;
  double dur = w2.end - w2.start;
  (*events)[w2.ev].ts = new_ts;
  w2.start = new_ts;
  w2.end = new_ts + dur;

  // The checker reports, at the later write's event, the earliest
  // earlier write that byte- and time-overlaps it.
  std::size_t a_new = w1.ev;
  std::size_t b_new = w2.ev;
  Canonicalize(events, {&a_new, &b_new});
  std::vector<MOp> ops2;
  Extract(*events, &ops2, nullptr);
  for (const MOp& e : ops2) {
    if (!e.is_write || e.ev >= b_new || e.file != w2.file) continue;
    if (e.client != w2.client && e.overlaps(w2) && e.time_overlaps(w2)) {
      a_new = e.ev;
      break;
    }
  }

  PlantedViolation p;
  p.applied = true;
  p.kind = ViolationKind::conflicting_writes;
  p.op_a = a_new;
  p.op_b = b_new;
  std::ostringstream d;
  d << "overlapped " << w2.client << " write into " << w1.client
    << "'s span on file" << w1.file;
  p.what = d.str();
  return p;
}

}  // namespace pdsi::consist
