// Online (incremental) consistency monitoring.
//
// ConsistencyMonitor is the streaming counterpart of CheckConsistency
// (checker.h): an obs::MonitorSink that consumes the canonical event
// stream — live via Tracer::subscribe or replayed via ReplayEvents — and
// flags the same first violation (same kind, same op pair) as the batch
// checker, without retaining the full trace. Where the batch checker
// indexes every op and edge up front, the monitor keeps only:
//
//   * live writes — per (file, byte-interval) deques of writes that can
//     still bind a future read (as its required version, its content
//     match, or a torn-read race). A write retires once a newer write of
//     the same interval supersedes it for every possible future read
//     under the model AND the horizon (min of the earliest pending read
//     start and the delivered watermark) has passed its end;
//   * markers — compact summaries (event index, fingerprint, publishing
//     client set, first publish instant) of retired writes, merged per
//     fingerprint, enough to still classify a read that returns stale
//     content as stale/unpublished exactly like the batch pass;
//   * pending reads — reads finalize once the watermark passes their end
//     (every edge and overlapping write that can bind them has then been
//     delivered). A read whose fingerprint matches nothing yet seen is
//     *deferred* rather than declared corrupt: the batch checker scans
//     the whole trace for a matching write, so the online verdict must
//     wait for a possible future match (-> unpublished_read, e.g. a
//     write reordered past its publishing close) or end of stream
//     (-> corrupt_read);
//   * reader edges — per (file, client) open/sync instants, pruned below
//     the horizon to the single newest entry each.
//
// First-violation parity: ops enter a decision queue in event order and
// verdicts are reported only when they reach the front with every
// earlier op decided, so a deferred read cannot be overtaken by a later
// violation — the reported pair is the batch checker's.
//
// Documented divergences (none occur in phase-disciplined workloads, and
// the parity tests cover every mutation injector):
//   * a partial-overlap write arriving after a read already finalized
//     cannot retroactively turn the read into a composite skip;
//   * a deferred read is decided by the FIRST future matching write (the
//     batch checker names the newest across the whole trace);
//   * stats after the first violation keep counting (the batch checker
//     stops), and conflict_pairs only counts pairs with a live partner —
//     verdict and op pair are what the monitor guarantees.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/obs/monitor.h"
#include "pdsi/obs/profile.h"

namespace pdsi::consist {

class ConsistencyMonitor : public obs::MonitorSink {
 public:
  explicit ConsistencyMonitor(ConsistencyModel model) : model_(model) {}

  void on_event(const obs::AnalysisEvent& e, std::uint64_t index) override;
  void finish(double now) override;

  /// No violation so far. Final only after finish().
  bool clean() const { return !violated_; }
  /// The first violation in canonical op order (meaningful when !clean());
  /// kind, op_a, op_b and detail match CheckConsistency on the same
  /// stream.
  const Violation& first() const { return first_; }
  const CheckStats& stats() const { return stats_; }

  /// Ops currently held: live writes + undecided (pending or deferred)
  /// reads. Markers and pruned edges are compact summaries, not retained
  /// ops — this is the O(open intervals) bound the tests pin.
  std::size_t retained() const;
  std::size_t peak_retained() const { return peak_retained_; }

  /// The first violation as a monitor alarm (kind "consistency", key =
  /// the violation kind name, value/threshold = the op pair indices).
  /// Call when !clean().
  obs::Alarm alarm() const;

 private:
  struct LiveWrite {
    std::size_t ev = 0;
    std::string client;
    double start = 0.0;
    double end = 0.0;
    std::uint64_t fp = 0;
    // First visibility edge of each type from the writer at or after the
    // write's end (the only instants required()/justified() consult).
    double first_close = -1.0;  ///< < 0 = none seen
    double first_sync = -1.0;
    double first_pub = -1.0;
  };

  /// Retired writes of one interval, merged per fingerprint: enough to
  /// reproduce the batch checker's match + justification verdict for a
  /// read returning this (stale) content.
  struct Marker {
    std::size_t ev = 0;  ///< newest merged event index (freshness compare)
    std::uint64_t fp = 0;
    /// Writer client -> min end among its merged writes. Membership gives
    /// program-order justification; the min end decides whether a later
    /// publish instant applies (justifying the earliest-ending merged
    /// write justifies the fingerprint — batch ORs over all matches).
    std::map<std::string, double> client_end;
    double first_pub = -1.0;  ///< earliest applicable publish; < 0 = none
  };

  struct IntervalState {
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::deque<LiveWrite> live;     ///< event order; retire from front only
    std::vector<Marker> markers;    ///< per distinct fingerprint
  };

  struct ReaderEdges {
    // Ascending instants, pruned below the horizon to the newest entry.
    std::vector<double> opens;
    std::vector<double> syncs;
  };

  struct FileState {
    std::map<std::pair<std::uint64_t, std::uint64_t>, IntervalState> intervals;
    std::map<std::string, ReaderEdges> readers;
  };

  struct PendingRead {
    std::size_t ev = 0;
    std::string client;
    std::uint64_t file = 0;
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::uint64_t fp = 0;
    double start = 0.0;
    double end = 0.0;
    bool deferred = false;  ///< fingerprint matched nothing yet seen
    // Frozen at deferral time (batch op_a candidates for corrupt_read).
    bool has_w_req = false;
    std::size_t w_req_ev = 0;
    bool has_overlap = false;
    std::size_t last_overlap_ev = 0;
  };

  /// One op awaiting its verdict in event order.
  struct Slot {
    std::size_t ev = 0;
    bool decided = false;
    bool bad = false;
    Violation v;
  };

  void on_write(const obs::AnalysisEvent& e, std::size_t index);
  void on_read(const obs::AnalysisEvent& e, std::size_t index);
  void on_edge(const obs::AnalysisEvent& e);
  /// Finalizes every pending (non-deferred) read whose end the watermark
  /// passed; `all` forces the rest (end of stream).
  void finalize_ready(bool all);
  void finalize_read(PendingRead& r);
  /// Offers a newly arrived write to the deferred reads of its file.
  void feed_deferred(const LiveWrite& w, const IntervalState& is,
                     std::uint64_t file);
  void decide(std::size_t ev, bool bad, const Violation& v);
  void advance_front();
  /// Horizon: no future (or still pending) read starts before this.
  double horizon() const;
  void try_retire(IntervalState& is, std::uint64_t file);
  void prune_edges(ReaderEdges& re) const;
  void note_retained();

  bool required(const LiveWrite& w, const PendingRead& r,
                const FileState& fs) const;
  bool justified(const LiveWrite& w, const PendingRead& r) const;

  ConsistencyModel model_;
  double last_ts_ = 0.0;
  std::map<std::uint64_t, FileState> files_;
  std::deque<PendingRead> pending_;  ///< arrival order (undecided reads)
  std::deque<Slot> queue_;           ///< ops in event order, front = oldest
  bool violated_ = false;
  Violation first_;
  CheckStats stats_;
  std::size_t live_writes_ = 0;
  std::size_t peak_retained_ = 0;
};

}  // namespace pdsi::consist
