// pdsi::consist — tunable consistency models for the parallel file
// system substrate, after Wang, Mohror & Snir, "Formal Definitions and
// Performance Comparison of Consistency Models for Parallel File
// Systems" (arXiv 2402.14105).
//
// The paper's observation: POSIX strong consistency is what the lock
// managers in `pdsi::pfs` implement implicitly, but HPC deployments
// deliberately relax it — close-to-open (NFS-style session semantics),
// commit (visibility at fsync), and MPI-IO's sync-barrier-sync pattern —
// and each relaxation removes serialization cost. This header makes the
// model an explicit switch; `checker.h` provides the trace-driven
// verifier that proves a recorded run actually honoured the model it
// claimed.
#pragma once

#include <string_view>

namespace pdsi::consist {

/// Visibility contract between a writer and a later reader on another
/// client, strongest first. In every model a client always sees its own
/// completed writes (program order), and writes racing a read in virtual
/// time are unordered (either outcome is legal).
enum class ConsistencyModel {
  /// Every write is globally visible the instant it completes. The pfs
  /// lock protocols (extent tokens, whole-file locks) pay for exactly
  /// this; it is the behaviour the substrate has always had.
  posix,
  /// Close-to-open: a write is promised to a reader only once the writer
  /// has closed the file and the reader has (re)opened it afterwards.
  session,
  /// Commit: a write is promised once the writer has issued fsync; no
  /// reader-side action is required.
  commit,
  /// MPI-IO sync-barrier-sync: the writer must sync, then the reader
  /// must sync, then read. The weakest (and cheapest) model here.
  mpiio,
};

inline constexpr int kNumConsistencyModels = 4;

std::string_view ConsistencyModelName(ConsistencyModel m);

/// Parses the names produced by ConsistencyModelName; false on unknown.
bool ParseConsistencyModel(std::string_view name, ConsistencyModel* out);

/// Position in the relaxation order: posix=0 < session=1 < commit=2 <
/// mpiio=3. Larger means weaker guarantees (and fewer required
/// visibility edges), which is why a trace clean under a stronger model
/// is clean under every weaker one (the lattice-monotonicity property
/// the checker's tests pin).
int RelaxationRank(ConsistencyModel m);

/// All four models in relaxation order, for sweeps.
inline constexpr ConsistencyModel kAllConsistencyModels[kNumConsistencyModels] = {
    ConsistencyModel::posix, ConsistencyModel::session,
    ConsistencyModel::commit, ConsistencyModel::mpiio};

}  // namespace pdsi::consist
