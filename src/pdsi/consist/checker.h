// Trace-driven consistency checking.
//
// The pfs client (with `PfsConfig::record_consist_ops`) annotates every
// successful data operation with its byte interval and a 32-bit content
// fingerprint, and emits the visibility edges the configured model
// publishes (lock-release per write for POSIX, close for session, fsync
// for commit/MPI-IO). The checker replays the sorted event stream — an
// in-process `Tracer::for_each_sorted` snapshot or a compact trace file
// parsed back with `ParseCompactTrace` — and verifies the claimed model:
//
//   * POSIX       — conflicting (byte-overlapping) writes from different
//                   clients must be serialised (linearizability of the
//                   extent ops), and every read must return the newest
//                   completed covering write;
//   * session     — visibility-after-close: a read must be at least as
//                   new as the newest write published by a writer close
//                   that precedes the reader's (re)open;
//   * commit      — visibility-after-sync, no reader-side action;
//   * mpiio       — writer sync then reader sync then read.
//
// Two complementary checks per read keep this both monotone over the
// model lattice and mutation-tight:
//
//   freshness  — the read must not return content older than the newest
//                *model-required* covering write. Every relaxed model's
//                required set is a subset of POSIX's (and MPI-IO's of
//                commit's), so a POSIX-clean trace is clean under every
//                weaker model.
//   provenance — whatever write the read's fingerprint attributes it to
//                must be *justified*: published by a recorded `pub` edge
//                before the read began, concurrent with the read in
//                virtual time, or the reader's own program order. This
//                is what catches a sync edge that was dropped or a write
//                reordered past the close that published it.
//
// Determinism: events are processed in canonical (ts, track, seq) order
// and the first violating op pair is reported with indices into the
// input vector; the same trace always yields the same verdict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/consist/model.h"
#include "pdsi/obs/profile.h"

namespace pdsi::consist {

enum class ViolationKind {
  /// The read returned content provably older than the newest write the
  /// model required it to see. op_a = the write that was due, op_b = the
  /// read that missed it.
  stale_read,
  /// The read returned a write that no recorded publish edge (and no
  /// concurrency or program-order rule) justifies under the model.
  /// op_a = the write that leaked, op_b = the read that saw it.
  unpublished_read,
  /// The read's fingerprint matches no write and no hole; the trace's
  /// content annotations are inconsistent. op_a = the expected write (or
  /// the read itself when nothing was expected), op_b = the read.
  corrupt_read,
  /// POSIX only: two byte-overlapping writes from different clients
  /// overlap in virtual time — the lock protocol failed to serialise
  /// conflicting extent ops. op_a = the earlier write, op_b = the later.
  conflicting_writes,
};

std::string_view ViolationKindName(ViolationKind k);

struct Violation {
  ViolationKind kind = ViolationKind::corrupt_read;
  std::size_t op_a = 0;  ///< index into the checked event vector
  std::size_t op_b = 0;  ///< index into the checked event vector
  std::string detail;    ///< human-readable explanation
};

struct CheckStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t content_checks = 0;    ///< reads with a binding expectation
  std::uint64_t composite_skips = 0;   ///< reads spanning multiple sources
  std::uint64_t conflict_pairs = 0;    ///< POSIX write pairs examined
};

struct CheckResult {
  bool clean = true;
  Violation first;  ///< meaningful only when !clean
  CheckStats stats;
};

/// Verifies `events` (canonical order, e.g. from obs::CollectEvents or
/// obs::ParseCompactTrace) against `model`. Only `consist`-category
/// events participate; anything else (lock_wait spans, oss activity) is
/// ignored, so whole bench traces can be audited directly.
CheckResult CheckConsistency(const std::vector<obs::AnalysisEvent>& events,
                             ConsistencyModel model);

/// True when `model` obliges the read at index `read_ev` to observe the
/// write at index `write_ev` (both indices into `events`, which must be
/// a write/read consist span respectively). Exposed for the violation
/// injector's candidate selection and for tests; false on non-op
/// indices.
bool RequiredVisible(const std::vector<obs::AnalysisEvent>& events,
                     ConsistencyModel model, std::size_t write_ev,
                     std::size_t read_ev);

/// One-line rendering of a violation, resolving the op pair against the
/// events it indexes ("stale_read: rank1 read [0,65536) @1.25 missed
/// rank0 write @0.90 ...").
std::string FormatViolation(const Violation& v,
                            const std::vector<obs::AnalysisEvent>& events);

/// 32-bit fingerprint of `len` zero bytes — what a read of a never
/// written hole must report. Exposed for the client recorder and tests.
std::uint64_t ZeroFingerprint(std::uint64_t len);

}  // namespace pdsi::consist
