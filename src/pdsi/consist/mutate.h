// Seeded violation injector — mutation-style coverage for the checker.
//
// Each mutator takes a clean recorded trace (canonical-order
// AnalysisEvents), plants exactly one consistency violation of a known
// kind, re-sorts the events back into canonical order, and reports the
// op pair the checker is expected to name (indices into the mutated,
// re-sorted vector). Tests then assert CheckConsistency finds a
// violation of exactly that kind on exactly that pair — proving the
// checker would have caught a real protocol bug, not merely that clean
// traces pass.
//
// Candidate selection is seeded and deterministic: the same (trace,
// seed) always mutates the same op. A mutator that finds no eligible
// candidate returns applied=false (e.g. DropSyncEdge on a POSIX trace,
// which records no sync edges).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/consist/checker.h"
#include "pdsi/consist/model.h"
#include "pdsi/obs/profile.h"

namespace pdsi::consist {

struct PlantedViolation {
  bool applied = false;
  ViolationKind kind = ViolationKind::corrupt_read;
  std::size_t op_a = 0;  ///< expected pair: index into the mutated vector
  std::size_t op_b = 0;
  std::string what;  ///< description of the mutation, for test logs
};

/// Moves a write past the close that published it (and past every read
/// that observed it), so the content those reads returned is no longer
/// justified by any recorded edge. Expected: unpublished_read naming the
/// relocated write and the earliest read that observed it. Targets
/// session-model traces.
PlantedViolation ReorderWritePastClose(std::vector<obs::AnalysisEvent>* events,
                                       std::uint64_t seed);

/// Deletes one sync edge (the `sync` instant and its co-located `pub`),
/// severing the only publication of some write a later read observed.
/// Expected: unpublished_read naming that write and its earliest
/// observer. Targets commit/mpiio-model traces.
PlantedViolation DropSyncEdge(std::vector<obs::AnalysisEvent>* events,
                              std::uint64_t seed);

/// Rewrites a read's fingerprint to content provably older than the
/// newest write `model` required it to see — a prior write of the same
/// interval when one exists, the unwritten hole otherwise. Expected:
/// stale_read naming the required write and the spliced read.
PlantedViolation SpliceStaleRead(std::vector<obs::AnalysisEvent>* events,
                                 ConsistencyModel model, std::uint64_t seed);

/// Shifts a later conflicting write back in virtual time so two
/// cross-client byte-overlapping writes overlap in time — the
/// serialisation the POSIX lock protocol is supposed to guarantee is
/// gone. Expected: conflicting_writes. Targets POSIX-model traces.
PlantedViolation OverlapConflictingWrites(std::vector<obs::AnalysisEvent>* events,
                                          std::uint64_t seed);

}  // namespace pdsi::consist
