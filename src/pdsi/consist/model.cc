#include "pdsi/consist/model.h"

namespace pdsi::consist {

std::string_view ConsistencyModelName(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::posix: return "posix";
    case ConsistencyModel::session: return "session";
    case ConsistencyModel::commit: return "commit";
    case ConsistencyModel::mpiio: return "mpiio";
  }
  return "?";
}

bool ParseConsistencyModel(std::string_view name, ConsistencyModel* out) {
  for (ConsistencyModel m : kAllConsistencyModels) {
    if (name == ConsistencyModelName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

int RelaxationRank(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::posix: return 0;
    case ConsistencyModel::session: return 1;
    case ConsistencyModel::commit: return 2;
    case ConsistencyModel::mpiio: return 3;
  }
  return 0;
}

}  // namespace pdsi::consist
