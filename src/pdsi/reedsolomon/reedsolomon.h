// Reed-Solomon erasure coding over GF(2^8).
//
// Two PDSI threads used exactly this code: SNL's GPU-accelerated
// Reed-Solomon for extended RAID (Curry, IPDPS'08 / PDSW'08 — arbitrary
// numbers of parity devices beyond RAID-6), and CMU's DiskReduce
// (replacing 3x replication with erasure codes in data-intensive
// storage, Fan PDSW'09). This is a full table-driven implementation: a
// Cauchy generator matrix over GF(256), systematic encoding of k data
// shards into m parity shards, and decoding from any k survivors via
// matrix inversion.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdsi/common/bytes.h"

namespace pdsi::reedsolomon {

/// GF(2^8) arithmetic (polynomial 0x11d), table-driven.
class GaloisField {
 public:
  GaloisField();

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }
  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;  // b != 0
  std::uint8_t inv(std::uint8_t a) const;                  // a != 0

  /// dst[i] ^= c * src[i] — the encode/decode inner loop.
  void mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
               std::span<std::uint8_t> dst) const;

 private:
  std::uint8_t exp_[512];
  std::uint8_t log_[256];
};

/// Systematic (k data + m parity) erasure code; any k of the k+m shards
/// reconstruct everything. k + m <= 255.
class ReedSolomon {
 public:
  ReedSolomon(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  /// Computes the m parity shards from k equal-length data shards.
  std::vector<Bytes> encode(const std::vector<Bytes>& data) const;

  /// Reconstructs missing shards. `shards` has k+m slots, data first;
  /// empty vectors mark erasures. Throws if more than m are missing or
  /// the sizes disagree; on return every slot is filled.
  void reconstruct(std::vector<Bytes>& shards) const;

  /// True if the parity shards are consistent with the data shards.
  bool verify(const std::vector<Bytes>& shards) const;

 private:
  /// Row `r` of the parity generator (Cauchy): parity_r = sum coeff * data_c.
  std::uint8_t coeff(int r, int c) const { return matrix_[r][c]; }

  /// Inverts an n x n matrix over GF(256) in place; throws if singular.
  static void Invert(std::vector<std::vector<std::uint8_t>>& a,
                     const GaloisField& gf);

  int k_;
  int m_;
  GaloisField gf_;
  std::vector<std::vector<std::uint8_t>> matrix_;  ///< m x k Cauchy block
};

}  // namespace pdsi::reedsolomon
