#include "pdsi/reedsolomon/reedsolomon.h"

#include <stdexcept>

namespace pdsi::reedsolomon {

GaloisField::GaloisField() {
  // Generator 2 over the AES-friendly primitive polynomial x^8+x^4+x^3+x^2+1.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (int i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = 0;  // never consulted for zero operands
}

std::uint8_t GaloisField::div(std::uint8_t a, std::uint8_t b) const {
  if (b == 0) throw std::domain_error("GF division by zero");
  if (a == 0) return 0;
  return exp_[(log_[a] + 255 - log_[b]) % 255];
}

std::uint8_t GaloisField::inv(std::uint8_t a) const {
  if (a == 0) throw std::domain_error("GF inverse of zero");
  return exp_[255 - log_[a]];
}

void GaloisField::mul_add(std::uint8_t c, std::span<const std::uint8_t> src,
                          std::span<std::uint8_t> dst) const {
  if (c == 0) return;
  const int lc = log_[c];
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] != 0) dst[i] ^= exp_[lc + log_[src[i]]];
  }
}

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  if (k < 1 || m < 1 || k + m > 255) {
    throw std::invalid_argument("ReedSolomon: need 1 <= k, m and k+m <= 255");
  }
  // Cauchy block: coeff(r, c) = 1 / (x_r ^ y_c) with x = k..k+m-1, y = 0..k-1.
  matrix_.assign(m_, std::vector<std::uint8_t>(k_));
  for (int r = 0; r < m_; ++r) {
    for (int c = 0; c < k_; ++c) {
      matrix_[r][c] = gf_.inv(static_cast<std::uint8_t>((k_ + r) ^ c));
    }
  }
}

std::vector<Bytes> ReedSolomon::encode(const std::vector<Bytes>& data) const {
  if (static_cast<int>(data.size()) != k_) {
    throw std::invalid_argument("encode: expected k data shards");
  }
  const std::size_t n = data[0].size();
  for (const auto& d : data) {
    if (d.size() != n) throw std::invalid_argument("encode: unequal shard sizes");
  }
  std::vector<Bytes> parity(m_, Bytes(n, 0));
  for (int r = 0; r < m_; ++r) {
    for (int c = 0; c < k_; ++c) {
      gf_.mul_add(coeff(r, c), data[c], parity[r]);
    }
  }
  return parity;
}

void ReedSolomon::Invert(std::vector<std::vector<std::uint8_t>>& a,
                         const GaloisField& gf) {
  const int n = static_cast<int>(a.size());
  // Augment with the identity.
  for (int i = 0; i < n; ++i) {
    a[i].resize(2 * n, 0);
    a[i][n + i] = 1;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int row = col; row < n; ++row) {
      if (a[row][col] != 0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) throw std::runtime_error("ReedSolomon: singular matrix");
    std::swap(a[col], a[pivot]);
    const std::uint8_t inv = gf.inv(a[col][col]);
    for (int j = 0; j < 2 * n; ++j) a[col][j] = gf.mul(a[col][j], inv);
    for (int row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const std::uint8_t f = a[row][col];
      for (int j = 0; j < 2 * n; ++j) {
        a[row][j] ^= gf.mul(f, a[col][j]);
      }
    }
  }
  // Keep only the inverse half.
  for (int i = 0; i < n; ++i) {
    a[i].erase(a[i].begin(), a[i].begin() + n);
  }
}

void ReedSolomon::reconstruct(std::vector<Bytes>& shards) const {
  if (static_cast<int>(shards.size()) != k_ + m_) {
    throw std::invalid_argument("reconstruct: expected k+m shard slots");
  }
  std::size_t n = 0;
  int present = 0;
  for (const auto& s : shards) {
    if (!s.empty()) {
      if (n == 0) n = s.size();
      if (s.size() != n) {
        throw std::invalid_argument("reconstruct: unequal shard sizes");
      }
      ++present;
    }
  }
  if (present < k_) throw std::invalid_argument("reconstruct: too many erasures");
  if (present == k_ + m_) return;

  // Choose the first k survivors and build their rows of the generator.
  std::vector<int> chosen;
  for (int i = 0; i < k_ + m_ && static_cast<int>(chosen.size()) < k_; ++i) {
    if (!shards[i].empty()) chosen.push_back(i);
  }
  std::vector<std::vector<std::uint8_t>> a(k_, std::vector<std::uint8_t>(k_, 0));
  for (int row = 0; row < k_; ++row) {
    const int shard = chosen[row];
    if (shard < k_) {
      a[row][shard] = 1;
    } else {
      a[row] = matrix_[shard - k_];
    }
  }
  Invert(a, gf_);  // a is now k x k: data = a * survivors

  // Recover missing data shards.
  for (int d = 0; d < k_; ++d) {
    if (!shards[d].empty()) continue;
    Bytes out(n, 0);
    for (int row = 0; row < k_; ++row) {
      gf_.mul_add(a[d][row], shards[chosen[row]], out);
    }
    shards[d] = std::move(out);
  }
  // Recompute missing parity from (now complete) data.
  for (int r = 0; r < m_; ++r) {
    if (!shards[k_ + r].empty()) continue;
    Bytes out(n, 0);
    for (int c = 0; c < k_; ++c) {
      gf_.mul_add(coeff(r, c), shards[c], out);
    }
    shards[k_ + r] = std::move(out);
  }
}

bool ReedSolomon::verify(const std::vector<Bytes>& shards) const {
  if (static_cast<int>(shards.size()) != k_ + m_) return false;
  std::vector<Bytes> data(shards.begin(), shards.begin() + k_);
  const auto parity = encode(data);
  for (int r = 0; r < m_; ++r) {
    if (parity[r] != shards[k_ + r]) return false;
  }
  return true;
}

}  // namespace pdsi::reedsolomon
