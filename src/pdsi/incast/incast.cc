#include "pdsi/incast/incast.h"

#include <algorithm>
#include <vector>

#include "pdsi/sim/event_queue.h"

namespace pdsi::incast {
namespace {

/// One sender's TCP state for the current block (sequence space restarts
/// each block; SRUs are short, so slow-start behaviour dominates, as in
/// the papers).
struct Flow {
  std::uint32_t total_pkts = 0;    ///< packets in this block's SRU
  std::uint32_t next_seq = 0;      ///< next new packet to send
  std::uint32_t cum_acked = 0;     ///< all seq < cum_acked delivered
  double cwnd = 3.0;
  double ssthresh = 1e9;
  std::uint32_t dupacks = 0;
  std::uint32_t rto_backoff = 1;
  double srtt = 0.0;
  bool in_recovery = false;        ///< NewReno fast recovery
  std::uint32_t recover_seq = 0;   ///< highest seq outstanding at loss
  sim::EventQueue::EventId rto_timer = 0;
  std::vector<bool> received;      ///< client-side out-of-order buffer
  std::uint32_t expected = 0;      ///< client's next in-order seq
  bool done = false;
};

class IncastSim {
 public:
  explicit IncastSim(const IncastParams& p) : p_(p), rng_(p.seed) {
    pkt_time_ = static_cast<double>(p_.mss_bytes) / p_.link_bw_bytes;
  }

  IncastResult run() {
    blocks_left_ = p_.blocks;
    flows_.assign(p_.senders, Flow{});
    for (auto& fl : flows_) {
      fl.cwnd = p_.initial_cwnd;
      // Established connections carry a sane slow-start threshold: exit
      // exponential growth before blowing far past the port buffer.
      fl.ssthresh = p_.buffer_packets;
    }
    start_block();
    queue_.run(500'000'000ULL);
    IncastResult r = result_;
    r.duration_s = finish_time_;
    const double total_bytes = static_cast<double>(p_.senders) * p_.sru_bytes *
                               p_.blocks;
    r.goodput_bytes = total_bytes / finish_time_;
    return r;
  }

 private:
  void start_block() {
    const std::uint32_t pkts = static_cast<std::uint32_t>(
        (p_.sru_bytes + p_.mss_bytes - 1) / p_.mss_bytes);
    flows_done_ = 0;
    ++epoch_;
    for (std::uint32_t f = 0; f < p_.senders; ++f) {
      Flow& fl = flows_[f];
      // The connection persists across blocks (cwnd/ssthresh/srtt carry
      // over); the sequence space restarts for the new SRU.
      if (fl.rto_timer) queue_.cancel(fl.rto_timer);
      fl.rto_timer = 0;
      fl.total_pkts = pkts;
      fl.next_seq = 0;
      fl.cum_acked = 0;
      fl.dupacks = 0;
      fl.rto_backoff = 1;
      fl.received.assign(pkts, false);
      fl.expected = 0;
      fl.done = false;
      try_send(f);
    }
  }

  double rto_for(Flow& fl) {
    const double base = std::max(p_.min_rto_s, 3.0 * fl.srtt);
    double jitter = 1.0;
    if (p_.rto_jitter > 0.0) {
      jitter += p_.rto_jitter * (rng_.uniform() - 0.5) * 2.0;
    }
    return base * jitter * fl.rto_backoff;
  }

  void arm_rto(std::uint32_t f) {
    Flow& fl = flows_[f];
    if (fl.rto_timer) queue_.cancel(fl.rto_timer);
    fl.rto_timer = queue_.after(rto_for(fl), [this, f] { on_timeout(f); });
  }

  void disarm_rto(std::uint32_t f) {
    Flow& fl = flows_[f];
    if (fl.rto_timer) {
      queue_.cancel(fl.rto_timer);
      fl.rto_timer = 0;
    }
  }

  std::uint32_t inflight(const Flow& fl) const {
    return fl.next_seq - fl.cum_acked;
  }

  void try_send(std::uint32_t f) {
    Flow& fl = flows_[f];
    if (fl.done) return;
    bool sent = false;
    while (fl.next_seq < fl.total_pkts &&
           inflight(fl) < static_cast<std::uint32_t>(fl.cwnd)) {
      transmit(f, fl.next_seq++);
      sent = true;
    }
    if ((sent || inflight(fl) > 0) && !fl.rto_timer) arm_rto(f);
  }

  void transmit(std::uint32_t f, std::uint32_t seq) {
    // Server uplinks are uncongested; contention is the client port.
    if (switch_q_ >= p_.buffer_packets) {
      ++result_.drops;
      return;
    }
    ++switch_q_;
    const double arrival = queue_.now() + p_.link_delay_s;
    // FIFO service at the bottleneck port.
    port_free_at_ = std::max(port_free_at_, arrival) + pkt_time_;
    const std::uint64_t epoch = epoch_;
    queue_.at(port_free_at_, [this, f, seq, epoch] {
      --switch_q_;
      deliver(f, seq, epoch);
    });
  }

  void deliver(std::uint32_t f, std::uint32_t seq, std::uint64_t epoch) {
    queue_.after(p_.link_delay_s, [this, f, seq, epoch] {
      if (epoch != epoch_) return;  // stale packet from a finished block
      Flow& fl = flows_[f];
      if (seq < fl.received.size() && !fl.received[seq]) {
        fl.received[seq] = true;
        ++result_.packets_delivered;
      }
      while (fl.expected < fl.total_pkts && fl.received[fl.expected]) {
        ++fl.expected;
      }
      const std::uint32_t cum = fl.expected;
      // ACK returns across the (uncongested) reverse path.
      queue_.after(p_.link_delay_s, [this, f, cum, epoch] {
        if (epoch == epoch_) on_ack(f, cum);
      });
    });
  }

  void on_ack(std::uint32_t f, std::uint32_t cum) {
    Flow& fl = flows_[f];
    if (fl.done) return;
    // Crude SRTT from the bottleneck rate (per-packet timing not tracked).
    const double sample = 4.0 * p_.link_delay_s + pkt_time_;
    fl.srtt = fl.srtt == 0.0 ? sample : 0.875 * fl.srtt + 0.125 * sample;

    if (cum > fl.cum_acked) {
      const std::uint32_t newly = cum - fl.cum_acked;
      fl.cum_acked = cum;
      fl.dupacks = 0;
      fl.rto_backoff = 1;
      if (fl.in_recovery) {
        if (cum >= fl.recover_seq) {
          // Full recovery: deflate to ssthresh and resume normally.
          fl.in_recovery = false;
          fl.cwnd = fl.ssthresh;
        } else {
          // Partial ack: more holes remain — keep blasting the window
          // (SACK-style multi-loss recovery; duplicates dedupe at the
          // receiver).
          retransmit_window(f);
        }
      } else if (fl.cwnd < fl.ssthresh) {
        fl.cwnd += newly;  // slow start
      } else {
        fl.cwnd += newly / fl.cwnd;  // congestion avoidance
      }
      if (fl.cum_acked >= fl.total_pkts) {
        fl.done = true;
        disarm_rto(f);
        if (++flows_done_ == p_.senders) complete_block();
        return;
      }
      arm_rto(f);
      try_send(f);
    } else if (cum == fl.cum_acked) {
      ++fl.dupacks;
      if (!fl.in_recovery && fl.dupacks == 3) {
        // Fast retransmit: resend the outstanding window (models SACK
        // recovering all holes within ~1 RTT).
        fl.ssthresh = std::max(2.0, fl.cwnd / 2.0);
        fl.cwnd = fl.ssthresh;
        fl.in_recovery = true;
        fl.recover_seq = fl.next_seq;
        fl.dupacks = 0;
        retransmit_window(f);
        arm_rto(f);
      } else if (fl.in_recovery) {
        // Each further dupack keeps the pipe full during recovery.
        fl.cwnd += 0.5;
        try_send(f);
      }
    }
  }

  void retransmit_window(std::uint32_t f) {
    Flow& fl = flows_[f];
    const std::uint32_t limit = std::min(
        fl.recover_seq,
        fl.cum_acked + static_cast<std::uint32_t>(fl.cwnd) + 3);
    for (std::uint32_t seq = fl.cum_acked; seq < limit; ++seq) {
      ++result_.fast_retransmits;
      transmit(f, seq);
    }
  }

  void on_timeout(std::uint32_t f) {
    Flow& fl = flows_[f];
    fl.rto_timer = 0;
    if (fl.done) return;
    ++result_.timeouts;
    fl.ssthresh = std::max(2.0, fl.cwnd / 2.0);
    fl.cwnd = 1.0;
    fl.dupacks = 0;
    fl.in_recovery = false;
    fl.rto_backoff = std::min(fl.rto_backoff * 2, 64u);
    // Go-back-N from the last cumulative ack.
    fl.next_seq = fl.cum_acked;
    try_send(f);
    if (!fl.rto_timer) arm_rto(f);
  }

  void complete_block() {
    finish_time_ = queue_.now();
    if (--blocks_left_ > 0) start_block();
  }

  IncastParams p_;
  Rng rng_;
  sim::EventQueue queue_;
  std::vector<Flow> flows_;
  double pkt_time_;
  std::uint32_t switch_q_ = 0;
  double port_free_at_ = 0.0;
  std::uint32_t flows_done_ = 0;
  std::uint32_t blocks_left_ = 0;
  std::uint64_t epoch_ = 0;
  double finish_time_ = 0.0;
  IncastResult result_;
};

}  // namespace

IncastResult SimulateIncast(const IncastParams& params) {
  return IncastSim(params).run();
}

}  // namespace pdsi::incast
