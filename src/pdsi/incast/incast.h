// TCP incast collapse (§4.2.3 "Storage Area Networking", Fig. 9;
// Phanishayee FAST'08, Vasudevan SIGCOMM'09).
//
// Synchronised reads: a client requests one "server request unit" (SRU)
// from each of N servers and cannot proceed to the next data block until
// every SRU arrives. All N responses funnel into one switch output port
// with a small buffer; beyond a modest N the concurrent windows overflow
// the buffer, whole windows are lost, and the affected flows stall for a
// full retransmission timeout (conventionally >= 200 ms) while the link
// sits idle — goodput collapses by an order of magnitude. Reducing the
// minimum RTO to ~1 ms (high-resolution timers), plus randomising it so
// retransmissions desynchronise, restores goodput; this module reproduces
// both the collapse and the fix.
#pragma once

#include <cstdint>

#include "pdsi/common/rng.h"

namespace pdsi::incast {

struct IncastParams {
  std::uint32_t senders = 8;
  std::uint64_t sru_bytes = 256 * 1024;   ///< per-server unit per block
  std::uint32_t blocks = 4;               ///< synchronised rounds
  double link_bw_bytes = 125e6;           ///< client link (1GE default)
  double link_delay_s = 40e-6;            ///< one hop propagation+processing
  std::uint32_t buffer_packets = 64;      ///< switch output-port buffer
  std::uint32_t mss_bytes = 1500;
  std::uint32_t initial_cwnd = 3;         ///< packets
  double min_rto_s = 0.2;                 ///< the conventional 200 ms floor
  double rto_jitter = 0.0;                ///< +/- fraction randomisation
  std::uint64_t seed = 1;
};

struct IncastResult {
  double goodput_bytes = 0.0;   ///< application bytes per second
  double duration_s = 0.0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t drops = 0;
  std::uint64_t packets_delivered = 0;
};

/// Runs the synchronized-read workload to completion.
IncastResult SimulateIncast(const IncastParams& params);

}  // namespace pdsi::incast
