// pdsi::fault — deterministic seeded fault injection for the simulated
// parallel file system.
//
// The PDSI report's core argument (Fig. 4's MTTI projection, the
// checkpoint-utilization models in src/pdsi/failure) is that component
// failures dominate petascale storage behaviour. This layer makes the
// simulated cluster actually fail: a FaultPlan describes OSS
// crash/restart windows, slow-disk degradation and dropped RPCs, all
// derived from a seeded PRNG so every run is byte-reproducible.
//
// Determinism contract:
//   * All random state (crash windows, per-server degradation factors)
//     is precomputed at construction from plan.seed via per-server
//     forked xoshiro streams — queries like down()/disk_factor() are
//     pure functions of (server, time).
//   * The only runtime randomness is drop_rpc(), which consumes a
//     per-server stream. Callers invoke it exclusively inside
//     VirtualScheduler::atomically sections (totally ordered by the
//     scheduler) or from a single-threaded event loop, so the i-th draw
//     for a server is the same draw on every run.
//   * An injector built from an all-zero (inactive) plan consumes no
//     randomness on the data path and changes no timing: installing it
//     is behaviourally identical to not installing one.
//
// Counters are atomic (order-independent sums) so rank threads may
// report concurrently; trace events land on obs::kFaultTrack and are
// only emitted from scheduler-ordered sections, keeping golden traces
// byte-stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "pdsi/common/rng.h"
#include "pdsi/obs/obs.h"

namespace pdsi::fault {

/// Everything the injector needs to derive a failure schedule, plus the
/// client-side recovery policy. All-zero rates (the default) mean the
/// plan is inactive and the data path is untouched.
struct FaultPlan {
  std::uint64_t seed = 1;        ///< PRNG seed for the whole schedule
  double horizon_s = 3600.0;     ///< crash windows generated in [0, horizon)

  // -- OSS crash/restart windows --
  double oss_mtbf_s = 0.0;       ///< mean uptime between crashes (0 = never)
  double oss_restart_s = 30.0;   ///< downtime per crash

  // -- Slow-disk degradation --
  double slow_disk_prob = 0.0;   ///< chance a server starts degraded
  double slow_disk_factor = 4.0; ///< disk service multiplier when degraded

  // -- RPC loss --
  double rpc_drop_prob = 0.0;    ///< per-request drop probability

  // -- Client recovery policy --
  double rpc_timeout_s = 5e-3;   ///< charged per failed attempt
  double retry_backoff_s = 1e-3; ///< doubles with each attempt
  std::uint32_t max_retries = 6; ///< attempts beyond the first
  /// Reads from a crashed server retry once, then go to a surviving
  /// server (replica model); false = single-copy, reads fail while the
  /// owner is down (the regime plfs::Reader's degraded mode handles).
  bool read_failover = true;

  bool active() const {
    return oss_mtbf_s > 0.0 || slow_disk_prob > 0.0 || rpc_drop_prob > 0.0;
  }
};

class FaultInjector {
 public:
  /// Precomputes the whole failure schedule for `num_servers` object
  /// storage servers. `ctx` (optional, must outlive the injector) feeds
  /// the fault.* counters and the `fault` trace track.
  FaultInjector(const FaultPlan& plan, std::uint32_t num_servers,
                obs::Context* ctx = nullptr);

  const FaultPlan& plan() const { return plan_; }
  std::uint32_t num_servers() const {
    return static_cast<std::uint32_t>(windows_.size());
  }

  // -- Schedule queries (pure; any thread) --

  /// True if `server` is inside a crash window at time `t`.
  bool down(std::uint32_t server, double t) const;
  /// End of the crash window containing `t`, or `t` if the server is up.
  double next_up(std::uint32_t server, double t) const;
  /// Disk service-time multiplier for the server (1.0 unless degraded).
  double disk_factor(std::uint32_t server) const;
  /// Crash windows beginning in (since, until] — the OSS uses this to
  /// drop volatile cache state after a restart.
  std::uint64_t crashes_between(std::uint32_t server, double since,
                                double until) const;
  /// All crash instants across servers, sorted ascending: the injected
  /// interrupt schedule failure::CheckpointSimParams::interrupts consumes.
  std::vector<double> interrupt_times() const;

  /// Test/bench hook: force an additional crash window.
  void force_down(std::uint32_t server, double start, double end);

  // -- Runtime draws & incident reporting (scheduler-ordered contexts) --

  /// Whether this RPC to `server` is lost. Consumes the server's stream
  /// only when rpc_drop_prob > 0, so inactive plans stay draw-free.
  bool drop_rpc(std::uint32_t server);

  void note_drop(std::uint32_t server, double t);
  void note_retry(std::uint32_t server, double start, double end);
  void note_failover(std::uint32_t from, std::uint32_t to, double t);
  void note_drain_retry(std::uint32_t server, double start, double end);

  // -- Incident totals --
  std::uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  std::uint64_t dropped_rpcs() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint64_t failovers() const { return failovers_.load(std::memory_order_relaxed); }
  std::uint64_t drain_retries() const { return drain_retries_.load(std::memory_order_relaxed); }
  /// Crash windows in the generated schedule (forced ones included).
  std::uint64_t crash_count() const;

 private:
  struct Window {
    double start;
    double end;
  };

  FaultPlan plan_;
  std::vector<std::vector<Window>> windows_;  ///< per server, sorted
  std::vector<double> disk_factor_;
  std::vector<Rng> drop_rng_;

  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> drain_retries_{0};

  obs::Context* ctx_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_dropped_ = nullptr;
  obs::Counter* c_failovers_ = nullptr;
  obs::Counter* c_drain_retries_ = nullptr;
};

}  // namespace pdsi::fault
