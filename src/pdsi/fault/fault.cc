#include "pdsi/fault/fault.h"

#include <algorithm>
#include <cassert>

namespace pdsi::fault {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t num_servers,
                             obs::Context* ctx)
    : plan_(plan), ctx_(ctx) {
  windows_.resize(num_servers);
  disk_factor_.assign(num_servers, 1.0);
  drop_rng_.reserve(num_servers);

  // One master stream forked per concern keeps the schedule for server s
  // independent of how many draws another server's schedule consumed.
  Rng master(plan_.seed);
  Rng crash_master = master.fork();
  Rng disk_master = master.fork();
  Rng drop_master = master.fork();

  for (std::uint32_t s = 0; s < num_servers; ++s) {
    Rng crash = crash_master.fork();
    if (plan_.oss_mtbf_s > 0.0) {
      double t = crash.exponential(plan_.oss_mtbf_s);
      while (t < plan_.horizon_s) {
        windows_[s].push_back({t, t + plan_.oss_restart_s});
        t += plan_.oss_restart_s + crash.exponential(plan_.oss_mtbf_s);
      }
    }
    Rng disk = disk_master.fork();
    if (plan_.slow_disk_prob > 0.0 && disk.chance(plan_.slow_disk_prob)) {
      disk_factor_[s] = plan_.slow_disk_factor;
    }
    drop_rng_.push_back(drop_master.fork());
  }

  if (ctx_ && ctx_->registry) {
    c_retries_ = &ctx_->registry->counter("fault.retries");
    c_dropped_ = &ctx_->registry->counter("fault.dropped_rpcs");
    c_failovers_ = &ctx_->registry->counter("fault.failovers");
    c_drain_retries_ = &ctx_->registry->counter("fault.drain_retries");
  }
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->track(obs::kFaultTrack, "fault");
  }
}

bool FaultInjector::down(std::uint32_t server, double t) const {
  const auto& w = windows_[server];
  // First window beginning after t; the candidate is its predecessor.
  auto it = std::upper_bound(
      w.begin(), w.end(), t,
      [](double v, const Window& win) { return v < win.start; });
  return it != w.begin() && t < std::prev(it)->end;
}

double FaultInjector::next_up(std::uint32_t server, double t) const {
  const auto& w = windows_[server];
  auto it = std::upper_bound(
      w.begin(), w.end(), t,
      [](double v, const Window& win) { return v < win.start; });
  if (it != w.begin() && t < std::prev(it)->end) return std::prev(it)->end;
  return t;
}

double FaultInjector::disk_factor(std::uint32_t server) const {
  return disk_factor_[server];
}

std::uint64_t FaultInjector::crashes_between(std::uint32_t server, double since,
                                             double until) const {
  const auto& w = windows_[server];
  auto lo = std::upper_bound(
      w.begin(), w.end(), since,
      [](double v, const Window& win) { return v < win.start; });
  auto hi = std::upper_bound(
      w.begin(), w.end(), until,
      [](double v, const Window& win) { return v < win.start; });
  return static_cast<std::uint64_t>(hi - lo);
}

std::vector<double> FaultInjector::interrupt_times() const {
  std::vector<double> out;
  for (const auto& server : windows_) {
    for (const Window& w : server) out.push_back(w.start);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FaultInjector::force_down(std::uint32_t server, double start, double end) {
  assert(end > start);
  auto& w = windows_[server];
  w.push_back({start, end});
  std::sort(w.begin(), w.end(),
            [](const Window& a, const Window& b) { return a.start < b.start; });
  // Coalesce overlaps so down()/next_up() can assume disjoint windows.
  std::vector<Window> merged;
  for (const Window& win : w) {
    if (!merged.empty() && win.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, win.end);
    } else {
      merged.push_back(win);
    }
  }
  w = std::move(merged);
}

bool FaultInjector::drop_rpc(std::uint32_t server) {
  if (plan_.rpc_drop_prob <= 0.0) return false;
  return drop_rng_[server].chance(plan_.rpc_drop_prob);
}

void FaultInjector::note_drop(std::uint32_t server, double t) {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (c_dropped_) c_dropped_->add();
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->instant(obs::kFaultTrack, "rpc_drop", "fault", t,
                          {obs::Arg::Int("server", server)});
  }
}

void FaultInjector::note_retry(std::uint32_t server, double start, double end) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (c_retries_) c_retries_->add();
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->complete(obs::kFaultTrack, "retry", "fault", start, end,
                           {obs::Arg::Int("server", server)});
  }
}

void FaultInjector::note_failover(std::uint32_t from, std::uint32_t to,
                                  double t) {
  failovers_.fetch_add(1, std::memory_order_relaxed);
  if (c_failovers_) c_failovers_->add();
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->instant(obs::kFaultTrack, "failover", "fault", t,
                          {obs::Arg::Int("from", from), obs::Arg::Int("to", to)});
  }
}

void FaultInjector::note_drain_retry(std::uint32_t server, double start,
                                     double end) {
  drain_retries_.fetch_add(1, std::memory_order_relaxed);
  if (c_drain_retries_) c_drain_retries_->add();
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->complete(obs::kFaultTrack, "drain_retry", "fault", start, end,
                           {obs::Arg::Int("server", server)});
  }
}

std::uint64_t FaultInjector::crash_count() const {
  std::uint64_t n = 0;
  for (const auto& server : windows_) n += server.size();
  return n;
}

}  // namespace pdsi::fault
