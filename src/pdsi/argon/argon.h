// Argon performance insulation (§4.2.4, Fig. 10; Wachs FAST'07 and the
// co-scheduling report CMU-PDL-08-113).
//
// Two jobs share storage servers: a sequential streamer and a random
// scanner. Uninsulated (FIFO) interleaving makes the disk seek between
// the jobs' localities on every request, destroying the streamer far
// beyond its fair share. Argon time-slices the disk head: within a slice
// only one job's requests are served, so each job runs at near its
// standalone efficiency scaled by its share (minus a small "guard band",
// typically <10%). On striped (multi-server) storage a client waits for
// the slowest server of each stripe, so unsynchronised per-server slices
// re-introduce the penalty; co-scheduling the slices across servers
// recovers ~90% of the best case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/storage/device_catalog.h"

namespace pdsi::argon {

enum class Scheduler {
  fifo,        ///< uninsulated arrival-order service
  timeslice,   ///< Argon: dedicated disk-head slices per job
};

enum class JobKind {
  streamer,    ///< large sequential reads, striped over all servers
  scanner,     ///< small random reads, independent per server
};

struct JobSpec {
  JobKind kind = JobKind::scanner;
  std::uint32_t outstanding_per_server = 8;  ///< scanner queue depth
  std::uint64_t request_bytes = 16 * 1024;   ///< scanner request size
  std::uint64_t chunk_bytes = 512 * 1024;    ///< streamer per-server chunk
};

struct ArgonParams {
  std::uint32_t servers = 1;
  Scheduler scheduler = Scheduler::timeslice;
  bool coscheduled = true;        ///< align slices across servers
  double quantum_s = 0.1;         ///< slice length (strict head dedication)
  double duration_s = 20.0;       ///< measured virtual time
  storage::DiskParams disk = storage::ReferenceSataDisk();
  std::vector<JobSpec> jobs;
};

struct JobResult {
  std::uint64_t bytes = 0;
  std::uint64_t requests = 0;
  double throughput = 0.0;  ///< bytes/s over the run
};

struct ArgonResult {
  std::vector<JobResult> jobs;
};

/// Runs the shared-storage experiment for params.duration_s virtual time.
ArgonResult RunArgon(const ArgonParams& params);

/// Standalone throughput of a single job on the same configuration
/// (insulation baselines).
JobResult RunAlone(const ArgonParams& params, const JobSpec& job);

}  // namespace pdsi::argon
