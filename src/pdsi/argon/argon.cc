#include "pdsi/argon/argon.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "pdsi/sim/event_queue.h"

namespace pdsi::argon {
namespace {

struct Request {
  std::uint32_t job;
  std::uint64_t object;
  std::uint64_t offset;
  std::uint64_t bytes;
  /// Called when the request's data is on the wire back to the client.
  std::function<void()> on_complete;
};

/// One storage server: a disk drained by the configured scheduler.
class Server {
 public:
  Server(const ArgonParams& p, std::uint32_t id, sim::EventQueue& queue)
      : p_(p), id_(id), queue_(queue), disk_(p.disk),
        job_queues_(p.jobs.size()) {}

  void submit(Request r) {
    if (p_.scheduler == Scheduler::fifo) {
      fifo_queue_.push_back(std::move(r));
    } else {
      job_queues_[r.job].push_back(std::move(r));
    }
    kick();
  }

 private:
  std::uint32_t slice_job(double now) const {
    const auto jobs = static_cast<std::uint32_t>(job_queues_.size());
    std::uint64_t idx = static_cast<std::uint64_t>(now / p_.quantum_s);
    if (!p_.coscheduled) idx += id_ * 7919;  // desynchronised phase
    return static_cast<std::uint32_t>(idx % jobs);
  }

  /// Any-job pick: slice owner first, then rotation (work conserving).
  bool pick_any(Request& out) {
    const std::uint32_t owner = slice_job(queue_.now());
    for (std::size_t step = 0; step < job_queues_.size(); ++step) {
      auto& q = job_queues_[(owner + step) % job_queues_.size()];
      if (!q.empty()) {
        out = std::move(q.front());
        q.pop_front();
        return true;
      }
    }
    return false;
  }

  void serve(Request r) {
    busy_ = true;
    const double service = disk_.access(r.object, r.offset, r.bytes);
    auto done = std::move(r.on_complete);
    queue_.after(service, [this, done = std::move(done)] {
      busy_ = false;
      done();
      kick();
    });
  }

  void kick() {
    if (busy_) return;
    if (p_.scheduler == Scheduler::fifo) {
      if (fifo_queue_.empty()) return;
      Request r = std::move(fifo_queue_.front());
      fifo_queue_.pop_front();
      serve(std::move(r));
      return;
    }
    // Time-sliced: the head is dedicated to the slice owner. If the
    // owner has nothing queued right now, park until either the owner
    // submits (submit() re-kicks) or the slice boundary passes.
    const std::uint32_t owner = slice_job(queue_.now());
    auto& oq = job_queues_[owner];
    if (!oq.empty()) {
      Request r = std::move(oq.front());
      oq.pop_front();
      serve(std::move(r));
      return;
    }
    bool any_pending = false;
    for (const auto& q : job_queues_) any_pending |= !q.empty();
    if (!any_pending || boundary_check_armed_) return;
    boundary_check_armed_ = true;
    const double next_boundary =
        (std::floor(queue_.now() / p_.quantum_s) + 1.0) * p_.quantum_s + 1e-9;
    queue_.at(next_boundary, [this] {
      boundary_check_armed_ = false;
      kick();
    });
  }

  const ArgonParams& p_;
  std::uint32_t id_;
  sim::EventQueue& queue_;
  storage::DiskModel disk_;
  std::vector<std::deque<Request>> job_queues_;
  std::deque<Request> fifo_queue_;
  bool busy_ = false;
  bool boundary_check_armed_ = false;
};

/// Drives the closed-loop clients and collects per-job byte counts.
class ArgonSim {
 public:
  explicit ArgonSim(const ArgonParams& p) : p_(p) {
    if (p_.jobs.empty()) throw std::invalid_argument("no jobs");
    servers_.reserve(p_.servers);
    for (std::uint32_t s = 0; s < p_.servers; ++s) {
      servers_.push_back(std::make_unique<Server>(p_, s, queue_));
    }
    results_.resize(p_.jobs.size());
  }

  ArgonResult run() {
    for (std::uint32_t j = 0; j < p_.jobs.size(); ++j) start_job(j);
    queue_.run_until(p_.duration_s);
    ArgonResult out;
    out.jobs = results_;
    for (auto& j : out.jobs) j.throughput = static_cast<double>(j.bytes) / p_.duration_s;
    return out;
  }

 private:
  void start_job(std::uint32_t j) {
    const JobSpec& spec = p_.jobs[j];
    if (spec.kind == JobKind::streamer) {
      issue_stream_round(j);
    } else {
      for (std::uint32_t s = 0; s < p_.servers; ++s) {
        for (std::uint32_t o = 0; o < spec.outstanding_per_server; ++o) {
          issue_scan(j, s);
        }
      }
    }
  }

  /// Streamer: one chunk per server, synchronised (stripe semantics: the
  /// client advances when the slowest server finishes).
  void issue_stream_round(std::uint32_t j) {
    if (queue_.now() >= p_.duration_s) return;
    const JobSpec& spec = p_.jobs[j];
    auto remaining = std::make_shared<std::uint32_t>(p_.servers);
    for (std::uint32_t s = 0; s < p_.servers; ++s) {
      Request r;
      r.job = j;
      r.object = 1000 + j;  // per-job locality
      r.offset = stream_pos_[j];
      r.bytes = spec.chunk_bytes;
      r.on_complete = [this, j, remaining] {
        if (queue_.now() <= p_.duration_s) {
          results_[j].bytes += p_.jobs[j].chunk_bytes;
          ++results_[j].requests;
        }
        if (--*remaining == 0) issue_stream_round(j);
      };
      servers_[s]->submit(std::move(r));
    }
    stream_pos_[j] += spec.chunk_bytes;
  }

  void issue_scan(std::uint32_t j, std::uint32_t s) {
    if (queue_.now() >= p_.duration_s) return;
    const JobSpec& spec = p_.jobs[j];
    Request r;
    r.job = j;
    r.object = 2000 + j;
    // Deterministic pseudo-random offsets over a large extent.
    scan_pos_[j] = scan_pos_[j] * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t span = 64ULL << 30;
    r.offset = (scan_pos_[j] >> 20) % span / spec.request_bytes * spec.request_bytes;
    r.bytes = spec.request_bytes;
    r.on_complete = [this, j, s] {
      if (queue_.now() <= p_.duration_s) {
        results_[j].bytes += p_.jobs[j].request_bytes;
        ++results_[j].requests;
      }
      issue_scan(j, s);
    };
    servers_[s]->submit(std::move(r));
  }

  ArgonParams p_;
  sim::EventQueue queue_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<JobResult> results_;
  std::unordered_map<std::uint32_t, std::uint64_t> stream_pos_;
  std::unordered_map<std::uint32_t, std::uint64_t> scan_pos_;
};

}  // namespace

ArgonResult RunArgon(const ArgonParams& params) { return ArgonSim(params).run(); }

JobResult RunAlone(const ArgonParams& params, const JobSpec& job) {
  ArgonParams solo = params;
  solo.jobs = {job};
  return RunArgon(solo).jobs.front();
}

}  // namespace pdsi::argon
