// ScalaTrace-style structural trace compression (§5.4.2; ORNL + NCSU).
//
// "To control event trace file size, ScalaTrace recognizes repetitive
// behavior patterns (e.g., loops) and saves information describing the
// pattern rather than detailed information about each event." ORNL
// extended it to POSIX I/O events and replayed traces into their
// performance-prediction framework.
//
// This module implements the core idea: an event stream is folded into a
// loop structure (RSD — regular section descriptors) by greedy detection
// of adjacent repeats, giving near-constant trace size for iterative
// applications; replay() regenerates the exact original stream,
// optionally through a user-defined action (the ORNL extension used for
// workload analysis instead of MPI re-execution).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pdsi::scalatrace {

/// One traced operation (MPI-IO / POSIX level).
struct Event {
  enum class Kind : std::uint8_t {
    open, close, read, write, seek, barrier, compute
  };
  Kind kind = Kind::compute;
  std::uint64_t arg = 0;  ///< bytes for read/write, offset delta for seek...

  bool operator==(const Event&) const = default;
};

std::string_view KindName(Event::Kind k);

/// A compressed trace: a sequence of nodes, each either a literal event
/// or a loop of an inner sequence.
class CompressedTrace {
 public:
  struct Node {
    // literal when count == 1 and body empty; loop otherwise.
    Event literal{};
    std::uint32_t count = 1;
    std::vector<Node> body;

    bool is_loop() const { return !body.empty(); }
  };

  /// Number of structural nodes (the stored size measure).
  std::size_t node_count() const;

  /// Total events the trace expands to.
  std::uint64_t event_count() const;

  /// Regenerates the full stream through `action`.
  void replay(const std::function<void(const Event&)>& action) const;

  /// Expands to a flat vector (tests / small traces).
  std::vector<Event> expand() const;

  std::vector<Node> nodes;
};

/// Folds an event stream into loop structure. Greedy bottom-up: repeated
/// adjacent windows (up to `max_window` events) collapse into loop nodes,
/// applied iteratively so nested loops fold too.
CompressedTrace Compress(const std::vector<Event>& events,
                         std::size_t max_window = 64);

/// A synthetic iterative application trace: per timestep, compute +
/// strided writes + barrier; every `checkpoint_every` steps, a checkpoint
/// sequence. This is the shape ScalaTrace compresses to O(1).
std::vector<Event> SyntheticAppTrace(int timesteps, int writes_per_step,
                                     int checkpoint_every);

}  // namespace pdsi::scalatrace
