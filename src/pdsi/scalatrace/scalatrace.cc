#include "pdsi/scalatrace/scalatrace.h"

namespace pdsi::scalatrace {

std::string_view KindName(Event::Kind k) {
  switch (k) {
    case Event::Kind::open: return "open";
    case Event::Kind::close: return "close";
    case Event::Kind::read: return "read";
    case Event::Kind::write: return "write";
    case Event::Kind::seek: return "seek";
    case Event::Kind::barrier: return "barrier";
    case Event::Kind::compute: return "compute";
  }
  return "?";
}

namespace {

using Node = CompressedTrace::Node;

bool NodeEqual(const Node& a, const Node& b) {
  if (a.count != b.count || a.body.size() != b.body.size()) return false;
  if (a.body.empty()) return a.literal == b.literal;
  for (std::size_t i = 0; i < a.body.size(); ++i) {
    if (!NodeEqual(a.body[i], b.body[i])) return false;
  }
  return true;
}

bool WindowsEqual(const std::vector<Node>& nodes, std::size_t a, std::size_t b,
                  std::size_t w) {
  for (std::size_t i = 0; i < w; ++i) {
    if (!NodeEqual(nodes[a + i], nodes[b + i])) return false;
  }
  return true;
}

/// One folding pass: applies every non-overlapping fold it finds at each
/// window size, smallest window first. Returns true if anything changed.
bool FoldOnce(std::vector<Node>& nodes, std::size_t max_window) {
  bool changed = false;
  for (std::size_t w = 1; w <= max_window && w <= nodes.size() / 2; ++w) {
    for (std::size_t i = 0; i + 2 * w <= nodes.size(); ++i) {
      std::size_t repeats = 1;
      while (i + (repeats + 1) * w <= nodes.size() &&
             WindowsEqual(nodes, i, i + repeats * w, w)) {
        ++repeats;
      }
      if (repeats < 2) continue;

      Node loop;
      if (w == 1 && nodes[i].is_loop()) {
        // Merging consecutive identical loops: multiply the counts.
        loop = nodes[i];
        loop.count *= static_cast<std::uint32_t>(repeats);
      } else {
        loop.count = static_cast<std::uint32_t>(repeats);
        loop.body.assign(nodes.begin() + static_cast<long>(i),
                         nodes.begin() + static_cast<long>(i + w));
      }
      nodes.erase(nodes.begin() + static_cast<long>(i),
                  nodes.begin() + static_cast<long>(i + repeats * w));
      nodes.insert(nodes.begin() + static_cast<long>(i), std::move(loop));
      changed = true;  // keep scanning from the fold onwards
    }
  }
  return changed;
}

std::size_t CountNodes(const std::vector<Node>& nodes) {
  std::size_t n = 0;
  for (const auto& node : nodes) {
    n += 1 + (node.is_loop() ? CountNodes(node.body) : 0);
  }
  return n;
}

std::uint64_t CountEvents(const std::vector<Node>& nodes) {
  std::uint64_t n = 0;
  for (const auto& node : nodes) {
    if (node.is_loop()) {
      n += node.count * CountEvents(node.body);
    } else {
      n += node.count;
    }
  }
  return n;
}

void Replay(const std::vector<Node>& nodes,
            const std::function<void(const Event&)>& action) {
  for (const auto& node : nodes) {
    for (std::uint32_t i = 0; i < node.count; ++i) {
      if (node.is_loop()) {
        Replay(node.body, action);
      } else {
        action(node.literal);
      }
    }
  }
}

}  // namespace

std::size_t CompressedTrace::node_count() const { return CountNodes(nodes); }
std::uint64_t CompressedTrace::event_count() const { return CountEvents(nodes); }

void CompressedTrace::replay(const std::function<void(const Event&)>& action) const {
  Replay(nodes, action);
}

std::vector<Event> CompressedTrace::expand() const {
  std::vector<Event> out;
  out.reserve(event_count());
  replay([&](const Event& e) { out.push_back(e); });
  return out;
}

CompressedTrace Compress(const std::vector<Event>& events, std::size_t max_window) {
  CompressedTrace trace;
  trace.nodes.reserve(events.size());
  for (const Event& e : events) {
    Node n;
    n.literal = e;
    trace.nodes.push_back(std::move(n));
  }
  while (FoldOnce(trace.nodes, max_window)) {
  }
  return trace;
}

std::vector<Event> SyntheticAppTrace(int timesteps, int writes_per_step,
                                     int checkpoint_every) {
  std::vector<Event> out;
  out.push_back({Event::Kind::open, 1});
  for (int t = 0; t < timesteps; ++t) {
    out.push_back({Event::Kind::compute, 500});
    for (int w = 0; w < writes_per_step; ++w) {
      out.push_back({Event::Kind::seek, 47 * 1024});
      out.push_back({Event::Kind::write, 47 * 1024});
    }
    out.push_back({Event::Kind::barrier, 0});
    if (checkpoint_every > 0 && (t + 1) % checkpoint_every == 0) {
      out.push_back({Event::Kind::open, 2});
      for (int w = 0; w < 4; ++w) out.push_back({Event::Kind::write, 1 << 20});
      out.push_back({Event::Kind::close, 2});
    }
  }
  out.push_back({Event::Kind::close, 1});
  return out;
}

}  // namespace pdsi::scalatrace
