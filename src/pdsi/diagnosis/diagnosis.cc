#include "pdsi/diagnosis/diagnosis.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "pdsi/common/bytes.h"
#include "pdsi/common/rng.h"
#include "pdsi/common/units.h"
#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::diagnosis {

std::string_view FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::none: return "none";
    case FaultKind::disk_hog: return "disk-hog";
    case FaultKind::network_loss: return "network-loss";
    case FaultKind::cpu_hog: return "cpu-hog";
  }
  return "?";
}

PeerDiagnoser::PeerDiagnoser(std::uint32_t num_servers, DiagnoserOptions opts)
    : opts_(opts), suspicion_(num_servers, 0), indictments_(num_servers, 0) {}

double PeerDiagnoser::deviation(const std::vector<double>& values,
                                std::uint32_t server) const {
  // Robust z-score: |x - median| / (MAD + eps).
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<double> dev;
  dev.reserve(values.size());
  for (double v : values) dev.push_back(std::abs(v - median));
  std::sort(dev.begin(), dev.end());
  const double mad = dev[dev.size() / 2];
  const double eps = 1e-9 + 0.05 * std::abs(median);
  return std::abs(values[server] - median) / (mad + eps);
}

std::optional<std::uint32_t> PeerDiagnoser::observe(
    const std::vector<MetricSample>& window) {
  if (windows_seen_++ < opts_.warmup_windows) return std::nullopt;
  const std::uint32_t n = static_cast<std::uint32_t>(window.size());
  std::vector<double> ops(n), bytes(n), lat(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    ops[s] = window[s].ops_per_s;
    bytes[s] = window[s].bytes_per_s;
    lat[s] = window[s].mean_latency_s;
  }
  std::optional<std::uint32_t> indicted;
  for (std::uint32_t s = 0; s < n; ++s) {
    const double z = std::max({deviation(ops, s), deviation(bytes, s),
                               deviation(lat, s)});
    if (z > opts_.threshold) {
      if (++suspicion_[s] >= opts_.persistence) {
        ++indictments_[s];
        if (!indicted) indicted = s;
      }
    } else {
      suspicion_[s] = 0;
    }
  }
  return indicted;
}

ExperimentResult RunDiagnosisExperiment(const ExperimentParams& params) {
  // Cluster sized so every server sees comparable load; hashed placement
  // spreads each client's file over all servers.
  pfs::PfsConfig cfg = pfs::PfsConfig::PvfsLike(params.servers);
  cfg.stripe_unit = 256 * KiB;
  cfg.store_data = false;

  const std::uint32_t actors = params.clients + 1;  // + monitor
  sim::VirtualScheduler sched(actors);
  pfs::PfsCluster cluster(cfg, sched, pfs::MakeHashedPlacement());
  const double total_time = params.windows * params.window_s;
  const std::uint32_t fault_window = params.windows / 2;

  ExperimentResult result;
  std::vector<std::thread> threads;

  // Clients: iozone-like mixed streaming writes + random reads.
  for (std::uint32_t c = 0; c < params.clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(params.seed * 977 + c);
      pfs::PfsClient client(cluster, c);
      auto fh = client.create("/ioz." + std::to_string(c));
      Bytes chunk(256 * KiB);
      std::uint64_t wpos = 0;
      while (client.now() < total_time) {
        client.write(*fh, wpos, chunk);
        wpos += chunk.size();
        Bytes small(64 * KiB);
        const std::uint64_t rpos =
            rng.below(std::max<std::uint64_t>(1, wpos / small.size())) * small.size();
        client.read(*fh, rpos, small);
      }
      sched.finish(c);
    });
  }

  // Monitor: samples windows, injects the fault, runs the diagnoser.
  threads.emplace_back([&] {
    const std::size_t me = params.clients;
    PeerDiagnoser diagnoser(params.servers);
    for (std::uint32_t s = 0; s < params.servers; ++s) {
      cluster.oss(s).drain_metrics();  // reset
    }
    for (std::uint32_t w = 0; w < params.windows; ++w) {
      if (w == fault_window && params.fault != FaultKind::none) {
        pfs::OssPerturbation p;
        switch (params.fault) {
          case FaultKind::disk_hog:
            p.disk_factor = params.severity;
            break;
          case FaultKind::network_loss:
            // Packet loss collapses TCP goodput far more than it slows a
            // disk: scale to make the wire term comparable to the disk
            // term it must stand out against.
            p.net_factor = 12.0 * params.severity;
            break;
          case FaultKind::cpu_hog:
            // A runaway process leaves only a sliver of CPU.
            p.cpu_factor = 200.0 * params.severity;
            break;
          case FaultKind::none:
            break;
        }
        // Perturbation flips between windows: safe because the monitor
        // holds the virtual-time minimum inside atomically.
        sched.atomically(me, [&](double now) {
          cluster.oss(params.faulty_server).set_perturbation(p);
          return now;
        });
      }
      sched.advance(me, params.window_s);
      std::vector<MetricSample> window(params.servers);
      sched.atomically(me, [&](double now) {
        for (std::uint32_t s = 0; s < params.servers; ++s) {
          auto m = cluster.oss(s).drain_metrics();
          window[s].ops_per_s = static_cast<double>(m.ops) / params.window_s;
          window[s].bytes_per_s = static_cast<double>(m.bytes) / params.window_s;
          window[s].mean_latency_s = m.latency.mean();
        }
        return now;
      });
      if (auto indicted = diagnoser.observe(window)) {
        if (!result.any_indictment) {
          result.any_indictment = true;
          result.indicted_server = *indicted;
          result.correct = params.fault != FaultKind::none &&
                           *indicted == params.faulty_server;
          result.false_alarm = !result.correct;
          result.windows_to_detect =
              w >= fault_window ? w - fault_window + 1 : 0;
        }
      }
    }
    sched.finish(me);
  });

  for (auto& t : threads) t.join();
  return result;
}

}  // namespace pdsi::diagnosis
