// Automatic diagnosis of performance problems in a parallel file system
// (§4.2.6; Kasick HotDep'09). Premise: in a homogeneous PVFS cluster the
// servers see statistically similar load, so a faulty server manifests as
// the odd one out. The diagnoser samples commonly available per-server
// metrics (throughput, latency), computes pairwise dissimilarity over a
// window, and indicts a server whose metrics persistently diverge from
// its peers. Evaluated with injected faults (rogue "hog" processes,
// lossy/blocked resources); the report quotes >= 66% correct
// identification with essentially no false indictments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pdsi/pfs/oss.h"

namespace pdsi::diagnosis {

/// One sampling window's worth of per-server observations.
struct MetricSample {
  double ops_per_s = 0.0;
  double bytes_per_s = 0.0;
  double mean_latency_s = 0.0;
};

/// Detector tuning.
struct DiagnoserOptions {
  /// A server is suspicious in a window when its distance from the peer
  /// median exceeds `threshold` times the peer spread.
  double threshold = 3.0;
  /// Windows of persistent suspicion required to indict.
  std::uint32_t persistence = 3;
  /// Initial windows used only to learn "normal" (startup transients of
  /// a fresh workload are not representative).
  std::uint32_t warmup_windows = 4;
};

/// Peer-comparison detector over a sliding history of windows.
class PeerDiagnoser {
 public:
  explicit PeerDiagnoser(std::uint32_t num_servers,
                         DiagnoserOptions opts = DiagnoserOptions());

  /// Feeds one window of samples (one per server); returns the indicted
  /// server for this window, if any.
  std::optional<std::uint32_t> observe(const std::vector<MetricSample>& window);

  /// Cumulative per-server indictment counts.
  const std::vector<std::uint32_t>& indictments() const { return indictments_; }

 private:
  double deviation(const std::vector<double>& values, std::uint32_t server) const;

  DiagnoserOptions opts_;
  std::uint64_t windows_seen_ = 0;
  std::vector<std::uint32_t> suspicion_;    ///< consecutive suspicious windows
  std::vector<std::uint32_t> indictments_;
};

/// Fault types from the evaluation.
enum class FaultKind {
  none,
  disk_hog,     ///< rogue process stealing disk time
  network_loss, ///< lossy/blocked network resource
  cpu_hog,      ///< runaway consumer of server CPU
};

std::string_view FaultKindName(FaultKind k);

/// Experiment harness: runs an iozone-like workload over a PVFS-like
/// cluster, injects `fault` on `faulty_server` halfway through, samples
/// windows, and reports what the diagnoser concluded.
struct ExperimentParams {
  std::uint32_t servers = 20;
  std::uint32_t clients = 16;
  std::uint32_t windows = 24;
  double window_s = 2.0;
  FaultKind fault = FaultKind::none;
  std::uint32_t faulty_server = 7;
  double severity = 3.0;  ///< service-time multiplier of the fault
  std::uint64_t seed = 1;
};

struct ExperimentResult {
  bool any_indictment = false;
  std::uint32_t indicted_server = 0;   ///< valid when any_indictment
  bool correct = false;                ///< indicted the injected server
  bool false_alarm = false;            ///< indicted a healthy server
  std::uint32_t windows_to_detect = 0;
};

ExperimentResult RunDiagnosisExperiment(const ExperimentParams& params);

}  // namespace pdsi::diagnosis
