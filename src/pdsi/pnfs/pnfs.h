// pNFS vs plain NFS scaling (§2.2 Standardization).
//
// The report's case for Parallel NFS: conventional NFS funnels every data
// byte through one server — a NAS head that caps aggregate bandwidth no
// matter how much backend storage sits behind it. pNFS (NFSv4.1) keeps
// the server for metadata but lets clients fetch a layout and then move
// data directly, in parallel, against the storage nodes, "eliminating
// the server bottlenecks inherent to NAS access methods."
//
// The model: N clients each stream a private file striped over S data
// servers. In NFS mode each chunk crosses the single server's NIC twice
// (backend in, client out) plus per-op server CPU; in pNFS mode clients
// pay one layout RPC and then talk to the data servers directly.
#pragma once

#include <cstdint>

namespace pdsi::pnfs {

enum class Protocol {
  nfs,   ///< all data proxied through one server
  pnfs,  ///< layout from the MDS, data direct to storage
};

struct PnfsParams {
  Protocol protocol = Protocol::pnfs;
  std::uint32_t clients = 16;
  std::uint32_t data_servers = 8;
  std::uint64_t bytes_per_client = 256 * 1024 * 1024;
  std::uint64_t chunk_bytes = 1024 * 1024;

  double disk_bw_bytes = 120e6;       ///< per data server
  double data_server_nic_bw = 117e6;  ///< 1GE storage nodes (era-typical)
  double nas_head_nic_bw = 117e6;     ///< the single NFS server's 1GE port
  double client_nic_bw = 117e6;       ///< 1GE clients
  double server_cpu_per_op_s = 30e-6;
  double rpc_latency_s = 100e-6;
  double layout_rpc_s = 300e-6;       ///< pNFS LAYOUTGET at the MDS
};

struct PnfsResult {
  double seconds = 0.0;
  std::uint64_t bytes = 0;
  double aggregate_bw() const {
    return seconds > 0 ? static_cast<double>(bytes) / seconds : 0.0;
  }
};

/// Runs the streaming workload to completion (virtual time).
PnfsResult RunStreamingClients(const PnfsParams& params);

}  // namespace pdsi::pnfs
