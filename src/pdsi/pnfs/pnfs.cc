#include "pdsi/pnfs/pnfs.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "pdsi/sim/virtual_time.h"
#include "pdsi/storage/disk_model.h"

namespace pdsi::pnfs {

PnfsResult RunStreamingClients(const PnfsParams& p) {
  sim::VirtualScheduler sched(p.clients);

  // Shared resources, touched only inside atomically sections.
  std::vector<storage::DiskModel> disks;
  std::vector<sim::SimResource> disk_res(p.data_servers);
  std::vector<sim::SimResource> ds_nic(p.data_servers);
  for (std::uint32_t s = 0; s < p.data_servers; ++s) {
    storage::DiskParams dp;
    dp.seq_bw_bytes = p.disk_bw_bytes;
    disks.emplace_back(dp);
  }
  sim::SimResource nas_nic;   // the single NFS server's wire
  sim::SimResource nas_cpu;
  sim::SimResource mds;       // pNFS metadata server

  std::mutex mu;
  double finish = 0.0;
  std::vector<std::thread> threads;
  threads.reserve(p.clients);
  for (std::uint32_t c = 0; c < p.clients; ++c) {
    threads.emplace_back([&, c] {
      sim::SimResource my_nic;  // client's own link
      if (p.protocol == Protocol::pnfs) {
        // LAYOUTGET once per file.
        sched.atomically(c, [&](double now) {
          return mds.reserve(now + p.rpc_latency_s, p.layout_rpc_s);
        });
      }
      // Streaming with readahead: a window of requests stays in flight,
      // so disk, server wire and client wire pipeline; the client's clock
      // advances to the delivery of each window rather than summing every
      // stage of every chunk.
      constexpr int kReadaheadChunks = 16;
      const std::uint64_t object = 5000 + c;
      std::uint64_t off = 0;
      std::uint64_t stripe = c;  // start server staggered per client
      // Independent per-server fetch chains: a striped file's pieces on
      // one server are a contiguous object, and different servers stream
      // in parallel.
      std::vector<double> disk_chain(p.data_servers, 0.0);
      std::vector<std::uint64_t> srv_off(p.data_servers, 0);
      while (off < p.bytes_per_client) {
        sched.atomically(c, [&](double now) {
          double deliver = now;
          for (int k = 0; k < kReadaheadChunks && off < p.bytes_per_client; ++k) {
            const std::uint64_t len =
                std::min(p.chunk_bytes, p.bytes_per_client - off);
            const std::uint32_t server =
                static_cast<std::uint32_t>(stripe % p.data_servers);
            const double wire = static_cast<double>(len);
            const double service =
                disks[server].access(object * 64 + server, srv_off[server], len);
            srv_off[server] += len;
            const double disk_done = disk_res[server].reserve(
                std::max(disk_chain[server], now + p.rpc_latency_s), service);
            disk_chain[server] = disk_done;
            double t = disk_done;
            if (p.protocol == Protocol::nfs) {
              // Proxy hop: storage -> NAS head -> client. The head's NIC
              // carries each byte twice and its CPU touches every op.
              t = nas_cpu.reserve(t, p.server_cpu_per_op_s);
              t = nas_nic.reserve(t, 2.0 * wire / p.nas_head_nic_bw);
            } else {
              t = ds_nic[server].reserve(t, wire / p.data_server_nic_bw);
            }
            t = my_nic.reserve(t, wire / p.client_nic_bw);
            deliver = std::max(deliver, t);
            off += len;
            ++stripe;
          }
          return deliver;
        });
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        finish = std::max(finish, sched.now(c));
      }
      sched.finish(c);
    });
  }
  for (auto& t : threads) t.join();

  PnfsResult r;
  r.seconds = finish;
  r.bytes = static_cast<std::uint64_t>(p.clients) * p.bytes_per_client;
  return r;
}

}  // namespace pdsi::pnfs
