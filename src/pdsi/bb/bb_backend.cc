#include "pdsi/bb/bb_backend.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdsi/bb/burst_buffer.h"
#include "pdsi/pfs/mds.h"  // NormalizePath

namespace pdsi::plfs {
namespace {

using pfs::NormalizePath;

/// Disjoint staged byte segments, start offset -> payload.
using SegMap = std::map<std::uint64_t, std::vector<std::uint8_t>>;

void SegRemove(SegMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return;
  auto it = m.lower_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > s) it = prev;
  }
  while (it != m.end() && it->first < e) {
    const std::uint64_t rs = it->first;
    std::vector<std::uint8_t> buf = std::move(it->second);
    const std::uint64_t re = rs + buf.size();
    it = m.erase(it);
    if (rs < s) {
      m.emplace(rs, std::vector<std::uint8_t>(buf.begin(), buf.begin() + (s - rs)));
    }
    if (e < re) {
      m.emplace(e, std::vector<std::uint8_t>(buf.begin() + (e - rs), buf.end()));
    }
  }
}

/// Burst-buffer staging in front of an inner backend. All public methods
/// take mu_; the buffer's sink/evict hooks run inside those sections (the
/// buffer is only driven from here) and therefore must not re-lock.
class BbBackend final : public Backend {
 public:
  BbBackend(bb::BurstBuffer& bb, std::unique_ptr<Backend> inner)
      : bb_(bb), inner_(std::move(inner)) {
    bb_.set_drain_sink([this](std::uint64_t id, std::uint64_t off, std::uint64_t len) {
      on_drained(id, off, len);
    });
    bb_.set_evict_hook([this](std::uint64_t id, std::uint64_t off, std::uint64_t len) {
      on_evicted(id, off, len);
    });
  }

  Status mkdir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    return inner_->mkdir(path);
  }

  Result<BackendHandle> create(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto ih = inner_->create(p);
    if (!ih) return ih.error();
    FileState f;
    f.id = next_id_++;
    f.inner_h = *ih;
    path_of_[f.id] = p;
    files_.emplace(p, std::move(f));
    return put(p);
  }

  Result<BackendHandle> open(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    if (!files_.count(p)) {
      // File that exists on the inner store only (e.g. pre-populated).
      auto ih = inner_->open(p);
      if (!ih) return ih.error();
      FileState f;
      f.id = next_id_++;
      f.inner_h = *ih;
      path_of_[f.id] = p;
      files_.emplace(p, std::move(f));
    }
    return put(p);
  }

  Status write(BackendHandle h, std::uint64_t off,
               std::span<const std::uint8_t> data) override {
    std::lock_guard<std::mutex> lk(mu_);
    FileState* f = file_for(h);
    if (!f) return Errc::bad_handle;
    if (data.empty()) return Status::Ok();
    // Stage the payload, then absorb: the buffer may drain (and hence
    // sink) other data while this write stalls on backpressure.
    SegRemove(f->staged, off, off + data.size());
    f->staged.emplace(off, std::vector<std::uint8_t>(data.begin(), data.end()));
    f->staged_size = std::max(f->staged_size, off + data.size());
    bb_.write(f->id, off, data.size(), bb_.now());
    return Status::Ok();
  }

  Result<std::size_t> read(BackendHandle h, std::uint64_t off,
                           std::span<std::uint8_t> out) override {
    std::lock_guard<std::mutex> lk(mu_);
    FileState* f = file_for(h);
    if (!f) return Errc::bad_handle;
    if (out.empty()) return static_cast<std::size_t>(0);
    bb_.read(f->id, off, out.size(), bb_.now(), nullptr);  // clock/stats only
    // Inner first (fills durable bytes), then overlay staged segments —
    // they always hold the newest version of whatever they cover.
    auto inner_n = inner_->read(f->inner_h, off, out);
    if (!inner_n) return inner_n.error();
    std::size_t n = *inner_n;
    const std::uint64_t e = off + out.size();
    auto it = f->staged.lower_bound(off);
    if (it != f->staged.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.size() > off) it = prev;
    }
    for (; it != f->staged.end() && it->first < e; ++it) {
      const std::uint64_t ss = std::max<std::uint64_t>(it->first, off);
      const std::uint64_t se = std::min<std::uint64_t>(it->first + it->second.size(), e);
      if (se <= ss) continue;
      // Zero any gap between the inner EOF and this segment.
      const std::uint64_t gap_from = off + n;
      if (ss > gap_from) {
        std::memset(out.data() + (gap_from - off), 0,
                    static_cast<std::size_t>(ss - gap_from));
      }
      std::memcpy(out.data() + (ss - off), it->second.data() + (ss - it->first),
                  static_cast<std::size_t>(se - ss));
      n = std::max<std::size_t>(n, static_cast<std::size_t>(se - off));
    }
    // Trailing hole before the logical EOF (a staged write past this range
    // extended the file): reads return zeros there, matching size().
    auto inner_sz = inner_->size(f->inner_h);
    const std::uint64_t fsize =
        std::max(inner_sz ? *inner_sz : 0, f->staged_size);
    if (off < fsize) {
      const auto want = static_cast<std::size_t>(
          std::min<std::uint64_t>(out.size(), fsize - off));
      if (want > n) {
        std::memset(out.data() + n, 0, want - n);
        n = want;
      }
    }
    return n;
  }

  Result<std::uint64_t> size(BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    FileState* f = file_for(h);
    if (!f) return Errc::bad_handle;
    auto inner_sz = inner_->size(f->inner_h);
    if (!inner_sz) return inner_sz.error();
    return std::max(*inner_sz, f->staged_size);
  }

  Status fsync(BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    FileState* f = file_for(h);
    if (!f) return Errc::bad_handle;
    // Durability barrier: the staging log drains FIFO, so flushing the
    // whole buffer is the (conservative) per-file barrier.
    bb_.flush(bb_.now());
    return inner_->fsync(f->inner_h);
  }

  Status close(BackendHandle h) override {
    std::lock_guard<std::mutex> lk(mu_);
    if (h < 0 || static_cast<std::size_t>(h) >= handles_.size() ||
        handles_[h].empty()) {
      return Errc::bad_handle;
    }
    // The per-file inner handle stays open: the drain sink may still need
    // it after every user handle is gone.
    handles_[h].clear();
    return Status::Ok();
  }

  Result<std::uint64_t> stat_size(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    // Tracked file: the persistent inner handle plus the staged high-water
    // mark answer without the default's open/size/close round trip (which
    // would also allocate a handle just to stat).
    if (auto it = files_.find(p); it != files_.end()) {
      auto inner_sz = inner_->size(it->second.inner_h);
      if (!inner_sz) return inner_sz.error();
      return std::max(*inner_sz, it->second.staged_size);
    }
    return inner_->stat_size(p);
  }

  Result<std::vector<std::string>> readdir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    return inner_->readdir(path);
  }

  Status unlink(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string p = NormalizePath(path);
    auto it = files_.find(p);
    if (it != files_.end()) {
      bb_.drop_file(it->second.id);
      inner_->close(it->second.inner_h);
      path_of_.erase(it->second.id);
      files_.erase(it);
    }
    return inner_->unlink(p);
  }

  Status rename(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lk(mu_);
    const std::string f = NormalizePath(from);
    const std::string t = NormalizePath(to);
    auto it = files_.find(f);
    if (it == files_.end()) return inner_->rename(f, t);
    // The inner backend may key its handles by path, so the persistent
    // per-file handle must be reopened across the rename.
    inner_->close(it->second.inner_h);
    Status s = inner_->rename(f, t);
    auto ih = inner_->open(s.ok() ? t : f);
    if (!ih) return Errc::io_error;
    it->second.inner_h = *ih;
    if (!s.ok()) return s;
    FileState moved = std::move(it->second);
    files_.erase(it);
    path_of_[moved.id] = t;
    files_.emplace(t, std::move(moved));
    // Open user handles keep working: they resolve through the path map.
    for (auto& h : handles_) {
      if (h == f) h = t;
    }
    return Status::Ok();
  }

  Result<bool> is_dir(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    return inner_->is_dir(path);
  }

  Result<bool> exists(const std::string& path) override {
    std::lock_guard<std::mutex> lk(mu_);
    return inner_->exists(path);
  }

  void compute(double seconds) override {
    std::lock_guard<std::mutex> lk(mu_);
    // Client think time: background drains overlap with it.
    bb_.run_until(bb_.now() + seconds);
    inner_->compute(seconds);
  }

  double now() const override {
    std::lock_guard<std::mutex> lk(mu_);
    return bb_.now();
  }

 private:
  struct FileState {
    std::uint64_t id = 0;
    BackendHandle inner_h = -1;
    SegMap staged;
    std::uint64_t staged_size = 0;  ///< high-water mark of staged offsets
  };

  // Runs at drain completion (inside a public method holding mu_): copy
  // the now-durable range to the inner backend.
  void on_drained(std::uint64_t id, std::uint64_t off, std::uint64_t len) {
    FileState* f = file_by_id(id);
    if (!f) return;
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(len), 0);
    const std::uint64_t e = off + len;
    auto it = f->staged.lower_bound(off);
    if (it != f->staged.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.size() > off) it = prev;
    }
    for (; it != f->staged.end() && it->first < e; ++it) {
      const std::uint64_t ss = std::max<std::uint64_t>(it->first, off);
      const std::uint64_t se = std::min<std::uint64_t>(it->first + it->second.size(), e);
      if (se > ss) {
        std::memcpy(buf.data() + (ss - off), it->second.data() + (ss - it->first),
                    static_cast<std::size_t>(se - ss));
      }
    }
    inner_->write(f->inner_h, off, buf);
  }

  // Runs at eviction (clean data; the inner copy is authoritative now).
  void on_evicted(std::uint64_t id, std::uint64_t off, std::uint64_t len) {
    FileState* f = file_by_id(id);
    if (f) SegRemove(f->staged, off, off + len);
  }

  FileState* file_by_id(std::uint64_t id) {
    auto pit = path_of_.find(id);
    if (pit == path_of_.end()) return nullptr;
    auto fit = files_.find(pit->second);
    return fit == files_.end() ? nullptr : &fit->second;
  }

  FileState* file_for(BackendHandle h) {
    if (h < 0 || static_cast<std::size_t>(h) >= handles_.size()) return nullptr;
    const std::string& p = handles_[h];
    if (p.empty()) return nullptr;
    auto it = files_.find(p);
    return it == files_.end() ? nullptr : &it->second;
  }

  BackendHandle put(std::string path) {
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      if (handles_[i].empty()) {
        handles_[i] = std::move(path);
        return static_cast<BackendHandle>(i);
      }
    }
    handles_.push_back(std::move(path));
    return static_cast<BackendHandle>(handles_.size() - 1);
  }

  mutable std::mutex mu_;
  bb::BurstBuffer& bb_;
  std::unique_ptr<Backend> inner_;
  std::map<std::string, FileState> files_;
  std::unordered_map<std::uint64_t, std::string> path_of_;
  std::vector<std::string> handles_;  ///< handle -> open path ("" = free)
  std::uint64_t next_id_ = 1;
};

}  // namespace

std::unique_ptr<Backend> MakeBbBackend(bb::BurstBuffer& bb,
                                       std::unique_ptr<Backend> inner) {
  return std::make_unique<BbBackend>(bb, std::move(inner));
}

}  // namespace pdsi::plfs
