#include <algorithm>
#include <memory>

#include "pdsi/bb/drain_target.h"
#include "pdsi/fault/fault.h"
#include "pdsi/pfs/cluster.h"

namespace pdsi::bb {
namespace {

// Stripes each drain unit across the cluster's object storage servers the
// same way PfsClient's data path does, but without the client-side lock
// protocol: the drain stream is a single sequential writer per file, which
// is exactly the pattern the PFS serves at full speed (and the reason a
// burst buffer converts N-to-1 checkpoint chaos into PFS-friendly I/O).
class PfsDrainTarget final : public DrainTarget {
 public:
  explicit PfsDrainTarget(pfs::PfsCluster& cluster) : cluster_(cluster) {}

  double drain(std::uint64_t file, std::uint64_t off, std::uint64_t len,
               double now) override {
    const pfs::PfsConfig& cfg = cluster_.config();
    double done = now;
    std::uint64_t pos = off;
    std::uint64_t remaining = len;
    while (remaining > 0) {
      const std::uint64_t stripe = pos / cfg.stripe_unit;
      const std::uint64_t in_stripe = pos % cfg.stripe_unit;
      const std::uint64_t n =
          std::min<std::uint64_t>(cfg.stripe_unit - in_stripe, remaining);
      const std::uint32_t server =
          cluster_.placement().server_for(file, stripe, cluster_.num_oss());
      double issue = now;
      // The drain is not latency-sensitive, so an injected OSS crash just
      // parks this chunk until the server restarts (plus one RPC timeout
      // for the failed attempt that detected the crash).
      if (fault::FaultInjector* inj = cluster_.fault();
          inj && inj->down(server, issue)) {
        const double resume = inj->next_up(server, issue) + inj->plan().rpc_timeout_s;
        inj->note_drain_retry(server, issue, resume);
        issue = resume;
      }
      done = std::max(done, cluster_.oss(server).serve_write(file, pos, n, issue));
      pos += n;
      remaining -= n;
    }
    return done;
  }

 private:
  pfs::PfsCluster& cluster_;
};

}  // namespace

std::unique_ptr<DrainTarget> MakePfsDrainTarget(pfs::PfsCluster& cluster) {
  return std::make_unique<PfsDrainTarget>(cluster);
}

}  // namespace pdsi::bb
