// PLFS backend staged through a burst buffer (see plfs/backend.h).
//
// Writes are absorbed into the burst buffer and become durable on the
// inner backend only when the buffer's drain scheduler flushes them;
// fsync() is the durability barrier. Reads are staged-first with
// fall-through to the inner backend (safe because only drained data is
// ever evicted). Namespace operations pass straight through, so PLFS
// containers work transparently on top.
#pragma once

#include <memory>

#include "pdsi/plfs/backend.h"

namespace pdsi::bb {
class BurstBuffer;
}

namespace pdsi::plfs {

/// Couples `bb` to `inner` as its drain destination: the returned backend
/// installs the buffer's drain sink and evict hook, so one BurstBuffer
/// must not be shared between two backends.
std::unique_ptr<Backend> MakeBbBackend(bb::BurstBuffer& bb,
                                       std::unique_ptr<Backend> inner);

}  // namespace pdsi::plfs
