// SSD burst-buffer tier: absorb checkpoints at flash speed, drain to the
// parallel file system in the background.
//
// The PDSI report's central workload is the defensive checkpoint — the
// machine is idle until the last byte is durable (Figs. 2 & 5) — and its
// flash chapter (§4.2.6, Figs. 11/14) characterises exactly the device
// that historically fixed it: an SSD staging tier in front of the PFS.
// This class wires those pieces together. Rank writes are absorbed into a
// log on a storage::SsdModel (sequential programs, so the FTL stays out
// of the way until the device is nearly full); dirty extents queue FIFO;
// an asynchronous drain scheduler on an owned sim::EventQueue flushes
// them to a DrainTarget in large sequential drain units.
//
// Policies:
//   * Backpressure — classic watermark hysteresis over un-drained bytes
//     (dirty + in-flight). The boundaries are exact and inclusive on both
//     sides: ingest stalls when `undrained_bytes() >= high_watermark *
//     capacity` (hitting the mark exactly engages backpressure) and
//     resumes only once drains pull un-drained bytes to
//     `<= low_watermark * capacity` (reaching the low mark exactly
//     releases; one byte above it does not). The gap between the marks is
//     what prevents thrashing, and a checkpoint larger than the buffer
//     degrades to drain speed instead of deadlocking.
//   * Eviction — drained (clean) extents are dropped oldest-first when a
//     new absorb needs space; dirty data is never evicted (it is the only
//     copy). A single write larger than the staging device is rejected.
//
// Durability: a byte is durable on the PFS only after the drain op
// carrying it completes; flush() is the checkpoint barrier that returns
// the virtual time at which everything currently staged is durable. The
// sink callback fires exactly once per drained run, in FIFO write order,
// which is what plfs::MakeBbBackend uses to move the actual bytes.
//
// Threading: all methods must be externally serialised (the PLFS backend
// wraps the buffer in its own mutex); determinism then follows from the
// event queue's total order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "pdsi/bb/drain_target.h"
#include "pdsi/common/units.h"
#include "pdsi/obs/obs.h"
#include "pdsi/sim/event_queue.h"
#include "pdsi/storage/ssd_model.h"

namespace pdsi::bb {

struct BbParams {
  storage::SsdParams ssd;       ///< staging device (absorb + staged reads)
  double high_watermark = 0.70; ///< un-drained fraction that stalls ingest
  double low_watermark = 0.40;  ///< un-drained fraction at which it resumes
  std::uint64_t drain_unit = 64 * MiB;  ///< target bytes per drain op
  bool evict_clean = true;      ///< drop drained data under space pressure
};

struct BbStats {
  std::uint64_t writes = 0;
  std::uint64_t bytes_absorbed = 0;
  std::uint64_t bytes_drained = 0;
  std::uint64_t bytes_evicted = 0;
  std::uint64_t drain_ops = 0;
  std::uint64_t ingest_stalls = 0;     ///< writes that hit backpressure
  double stall_seconds = 0.0;          ///< ingest time lost to backpressure
  double absorb_seconds = 0.0;         ///< flash time charged to ingest
  double drain_busy_seconds = 0.0;     ///< drain-stream busy time
};

class BurstBuffer {
 public:
  /// Fires once per drained contiguous run, at drain completion, in FIFO
  /// write order: the moment those bytes are durable on the target.
  using DrainSink =
      std::function<void(std::uint64_t file, std::uint64_t off, std::uint64_t len)>;
  /// Fires when a clean staged run is evicted (backing bytes may be freed;
  /// the data is already durable on the target).
  using EvictHook = DrainSink;

  /// `obs` (optional, must outlive the buffer) traces absorb/stall spans
  /// on obs::kBbIngestTrack and drain ops on obs::kBbDrainTrack.
  BurstBuffer(BbParams params, DrainTarget& target, obs::Context* obs = nullptr);

  /// Absorbs `len` bytes of `file` at `off`, arriving at caller time
  /// `now`; returns the completion time (absorb is blocking; any
  /// backpressure stall is included and recorded in stats).
  double write(std::uint64_t file, std::uint64_t off, std::uint64_t len, double now);

  /// Staged read: if [off, off+len) is fully resident, sets *hit and
  /// returns completion at flash speed; otherwise clears *hit and returns
  /// `now` (caller falls through to the backing store).
  double read(std::uint64_t file, std::uint64_t off, std::uint64_t len,
              double now, bool* hit);

  /// Checkpoint barrier: drains everything staged-but-not-durable and
  /// returns the virtual time the last byte lands on the target.
  double flush(double now);

  /// Discards all staged state for `file` (unlink). In-flight drains for
  /// it complete as no-ops (their sink is suppressed).
  void drop_file(std::uint64_t file);

  /// Advances background drains to time `t` (lets a caller model compute
  /// time passing between writes).
  void run_until(double t) { queue_.run_until(t); }

  double now() const { return queue_.now(); }
  /// Bytes whose only copy is the burst buffer (not yet handed to drain).
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  /// Dirty plus in-flight: the quantity the watermarks govern.
  std::uint64_t undrained_bytes() const { return dirty_bytes_ + in_flight_bytes_; }
  /// All staged bytes (dirty + in-flight + clean-but-resident).
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  std::uint64_t capacity_bytes() const { return params_.ssd.capacity_bytes; }
  bool drain_idle() const { return !drain_active_; }

  const BbParams& params() const { return params_; }
  const BbStats& stats() const { return stats_; }
  const storage::SsdModel& ssd() const { return ssd_; }

  void set_drain_sink(DrainSink sink) { sink_ = std::move(sink); }
  void set_evict_hook(EvictHook hook) { evict_hook_ = std::move(hook); }

 private:
  /// Disjoint half-open byte ranges, start -> end.
  using RangeMap = std::map<std::uint64_t, std::uint64_t>;

  struct FileState {
    RangeMap resident;   ///< readable from the staging device
    RangeMap dirty;      ///< written, not yet picked up by a drain op
    RangeMap in_flight;  ///< inside a drain op that has not completed
  };

  /// One absorbed write, queued for FIFO drain.
  struct LogEntry {
    std::uint64_t file;
    std::uint64_t off;
    std::uint64_t len;
    double available_at;  ///< absorb completion; drain may not start earlier
  };

  struct Run {
    std::uint64_t file;
    std::uint64_t off;
    std::uint64_t len;
  };

  static std::uint64_t RangeAdd(RangeMap& m, std::uint64_t s, std::uint64_t e);
  static std::uint64_t RangeRemove(RangeMap& m, std::uint64_t s, std::uint64_t e);
  static bool RangeCovers(const RangeMap& m, std::uint64_t s, std::uint64_t e);
  /// Sub-ranges of [s, e) present in `m`.
  static std::vector<Run> RangePieces(const RangeMap& m, std::uint64_t file,
                                      std::uint64_t s, std::uint64_t e);

  FileState& state(std::uint64_t file) { return files_[file]; }

  /// Sequential log write on the staging flash; wraps at capacity.
  double absorb_to_flash(std::uint64_t len);
  /// Flash read cost for a staged range (position folded into the log).
  double staged_read_cost(std::uint64_t off, std::uint64_t len);

  void maybe_schedule_drain(double not_before);
  void drain_step();
  void complete_drain(const std::vector<Run>& runs, std::uint64_t bytes);
  /// Evicts clean runs oldest-first until `need` more bytes fit; returns
  /// true if they now do.
  bool evict_for(std::uint64_t need);

  BbParams params_;
  DrainTarget& target_;
  sim::EventQueue queue_;
  storage::SsdModel ssd_;
  BbStats stats_;
  DrainSink sink_;
  EvictHook evict_hook_;
  obs::Context* ctx_;
  obs::Counter* c_absorbed_ = nullptr;
  obs::Counter* c_drained_ = nullptr;
  obs::Counter* c_evicted_ = nullptr;
  obs::Counter* c_stalls_ = nullptr;
  obs::Histogram* h_absorb_s_ = nullptr;

  std::unordered_map<std::uint64_t, FileState> files_;
  std::deque<LogEntry> drain_fifo_;
  std::deque<Run> clean_fifo_;   ///< eviction order (drain completion order)
  std::uint64_t dirty_bytes_ = 0;
  std::uint64_t in_flight_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t log_cursor_ = 0;  ///< staging-flash append position
  bool drain_active_ = false;
};

}  // namespace pdsi::bb
