#include "pdsi/bb/burst_buffer.h"

#include <algorithm>
#include <stdexcept>

namespace pdsi::bb {

BurstBuffer::BurstBuffer(BbParams params, DrainTarget& target, obs::Context* obs)
    : params_(params), target_(target), ssd_(params.ssd), ctx_(obs) {
  if (params_.low_watermark < 0.0 || params_.high_watermark > 1.0 ||
      params_.low_watermark >= params_.high_watermark) {
    throw std::invalid_argument("BurstBuffer: watermarks must satisfy 0 <= low < high <= 1");
  }
  if (params_.drain_unit == 0) {
    throw std::invalid_argument("BurstBuffer: drain_unit must be positive");
  }
  if (ctx_) {
    if (ctx_->tracer) {
      ctx_->tracer->track(obs::kBbIngestTrack, "bb.ingest");
      ctx_->tracer->track(obs::kBbDrainTrack, "bb.drain");
    }
    if (ctx_->registry) {
      c_absorbed_ = &ctx_->registry->counter("bb.bytes_absorbed");
      c_drained_ = &ctx_->registry->counter("bb.bytes_drained");
      c_evicted_ = &ctx_->registry->counter("bb.bytes_evicted");
      c_stalls_ = &ctx_->registry->counter("bb.ingest_stalls");
      h_absorb_s_ = &ctx_->registry->histogram("bb.absorb_s", obs::LatencyBuckets());
    }
  }
}

// -- Interval-set helpers ---------------------------------------------------

std::uint64_t BurstBuffer::RangeAdd(RangeMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return 0;
  std::uint64_t added = e - s;
  auto it = m.upper_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= s) it = prev;  // overlaps or touches on the left
  }
  std::uint64_t ns = s, ne = e;
  while (it != m.end() && it->first <= ne) {
    const std::uint64_t os = std::max(it->first, s);
    const std::uint64_t oe = std::min(it->second, e);
    if (oe > os) added -= oe - os;
    ns = std::min(ns, it->first);
    ne = std::max(ne, it->second);
    it = m.erase(it);
  }
  m.emplace(ns, ne);
  return added;
}

std::uint64_t BurstBuffer::RangeRemove(RangeMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return 0;
  std::uint64_t removed = 0;
  auto it = m.lower_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second > s) it = prev;
  }
  while (it != m.end() && it->first < e) {
    const std::uint64_t rs = it->first, re = it->second;
    const std::uint64_t os = std::max(rs, s), oe = std::min(re, e);
    removed += oe - os;
    it = m.erase(it);
    if (rs < os) m.emplace(rs, os);
    if (oe < re) m.emplace(oe, re);
  }
  return removed;
}

bool BurstBuffer::RangeCovers(const RangeMap& m, std::uint64_t s, std::uint64_t e) {
  if (s >= e) return true;
  auto it = m.upper_bound(s);
  if (it == m.begin()) return false;
  --it;
  return it->second >= e;
}

std::vector<BurstBuffer::Run> BurstBuffer::RangePieces(const RangeMap& m,
                                                       std::uint64_t file,
                                                       std::uint64_t s,
                                                       std::uint64_t e) {
  std::vector<Run> pieces;
  if (s >= e) return pieces;
  auto it = m.lower_bound(s);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second > s) it = prev;
  }
  for (; it != m.end() && it->first < e; ++it) {
    const std::uint64_t os = std::max(it->first, s);
    const std::uint64_t oe = std::min(it->second, e);
    if (oe > os) pieces.push_back({file, os, oe - os});
  }
  return pieces;
}

// -- Staging flash ----------------------------------------------------------

double BurstBuffer::absorb_to_flash(std::uint64_t len) {
  // The buffer runs the device as an append log: sequential programs keep
  // FTL write amplification at ~1 no matter how ranks interleave, which is
  // why burst buffers get flash-sequential absorb speed out of checkpoint
  // traffic that would be random at the PFS.
  double t = 0.0;
  const std::uint64_t cap = params_.ssd.capacity_bytes;
  // One erase block per flash command: a single huge program could demand
  // more free pages than the over-provision headroom can ever supply (the
  // FTL refuses to consume its last erased block), while block-sized
  // commands let garbage collection reclaim space between them.
  const std::uint64_t chunk = static_cast<std::uint64_t>(params_.ssd.pages_per_block) *
                              params_.ssd.page_bytes;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t pos = log_cursor_;
    const std::uint64_t n = std::min({remaining, cap - pos, chunk});
    t += ssd_.write(pos, n);
    log_cursor_ = (pos + n) % cap;
    remaining -= n;
  }
  return t;
}

double BurstBuffer::staged_read_cost(std::uint64_t off, std::uint64_t len) {
  const std::uint64_t cap = params_.ssd.capacity_bytes;
  std::uint64_t pos = off % cap;
  if (pos + len > cap) pos = 0;  // fold wrapped log positions
  return ssd_.read(pos, len);
}

// -- Ingest -----------------------------------------------------------------

double BurstBuffer::write(std::uint64_t file, std::uint64_t off,
                          std::uint64_t len, double now) {
  if (len == 0) return now;
  const std::uint64_t cap = params_.ssd.capacity_bytes;
  if (len > cap) {
    throw std::invalid_argument("BurstBuffer: write larger than the staging device");
  }
  queue_.run_until(now);

  bool stalled = false;
  // Watermark backpressure with hysteresis: once un-drained bytes cross
  // the high mark, ingest parks until drains pull them under the low mark.
  const auto high = static_cast<std::uint64_t>(params_.high_watermark *
                                               static_cast<double>(cap));
  const auto low = static_cast<std::uint64_t>(params_.low_watermark *
                                              static_cast<double>(cap));
  if (undrained_bytes() >= high) {
    stalled = true;
    ++stats_.ingest_stalls;
    while (undrained_bytes() > low && queue_.step()) {
    }
  }

  // Capacity: make room by evicting clean (already-durable) data
  // oldest-first; if everything staged is still dirty or in flight, wait
  // on drain progress.
  while (true) {
    std::uint64_t covered = 0;
    auto it = files_.find(file);
    if (it != files_.end()) {
      for (const Run& p : RangePieces(it->second.resident, file, off, off + len)) {
        covered += p.len;
      }
    }
    const std::uint64_t growth = len - covered;
    if (resident_bytes_ + growth <= cap) break;
    if (evict_for(resident_bytes_ + growth - cap)) continue;  // re-check fit
    if (!stalled) {
      stalled = true;
      ++stats_.ingest_stalls;
    }
    if (!queue_.step()) {
      throw std::logic_error("BurstBuffer: staging wedged (un-drained data exceeds capacity)");
    }
  }

  const double start = std::max(now, queue_.now());
  if (stalled) {
    stats_.stall_seconds += start - now;
    if (c_stalls_) c_stalls_->add(1);
    if (ctx_ && ctx_->tracer && start > now) {
      ctx_->tracer->complete(obs::kBbIngestTrack, "stall", "bb", now, start,
                             {obs::Arg::Int("file", file)});
    }
  }

  const double dt = absorb_to_flash(len);
  const double done = start + dt;
  ++stats_.writes;
  stats_.bytes_absorbed += len;
  stats_.absorb_seconds += dt;
  if (c_absorbed_) c_absorbed_->add(len);
  if (h_absorb_s_) h_absorb_s_->add(dt);
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->complete(obs::kBbIngestTrack, "absorb", "bb", start, done,
                           {obs::Arg::Int("file", file), obs::Arg::Int("off", off),
                            obs::Arg::Int("len", len)});
  }

  FileState& fs = state(file);
  resident_bytes_ += RangeAdd(fs.resident, off, off + len);
  dirty_bytes_ += RangeAdd(fs.dirty, off, off + len);
  drain_fifo_.push_back({file, off, len, done});
  maybe_schedule_drain(done);
  return done;
}

bool BurstBuffer::evict_for(std::uint64_t need) {
  if (!params_.evict_clean) return false;
  std::uint64_t freed = 0;
  while (freed < need && !clean_fifo_.empty()) {
    const Run r = clean_fifo_.front();
    clean_fifo_.pop_front();
    auto it = files_.find(r.file);
    if (it == files_.end()) continue;  // file dropped since the drain
    FileState& fs = it->second;
    // Only bytes that are neither re-dirtied nor mid-drain may go: for
    // those the staging copy is the only copy.
    RangeMap evictable;
    for (const Run& p : RangePieces(fs.resident, r.file, r.off, r.off + r.len)) {
      evictable.emplace(p.off, p.off + p.len);
    }
    for (const auto& [s, e] : fs.dirty) RangeRemove(evictable, s, e);
    for (const auto& [s, e] : fs.in_flight) RangeRemove(evictable, s, e);
    for (const auto& [s, e] : evictable) {
      const std::uint64_t n = RangeRemove(fs.resident, s, e);
      resident_bytes_ -= n;
      freed += n;
      stats_.bytes_evicted += n;
      if (n > 0) {
        if (c_evicted_) c_evicted_->add(n);
        if (ctx_ && ctx_->tracer) {
          ctx_->tracer->instant(obs::kBbIngestTrack, "evict", "bb", queue_.now(),
                                {obs::Arg::Int("file", r.file),
                                 obs::Arg::Int("off", s), obs::Arg::Int("len", n)});
        }
        if (evict_hook_) evict_hook_(r.file, s, e - s);
      }
    }
  }
  return freed >= need;
}

// -- Drain scheduler --------------------------------------------------------

void BurstBuffer::maybe_schedule_drain(double not_before) {
  if (drain_active_ || drain_fifo_.empty()) return;
  drain_active_ = true;
  queue_.at(std::max(not_before, queue_.now()), [this] { drain_step(); });
}

void BurstBuffer::drain_step() {
  const double t = queue_.now();
  while (!drain_fifo_.empty()) {
    if (drain_fifo_.front().available_at > t) {
      // Next staged data is still being absorbed; wake when it lands.
      queue_.at(drain_fifo_.front().available_at, [this] { drain_step(); });
      return;
    }
    // Assemble one drain unit: FIFO entries of a single file, up to
    // drain_unit dirty bytes, contiguous pieces merged so the target sees
    // large sequential writes.
    const std::uint64_t file = drain_fifo_.front().file;
    FileState& fs = state(file);
    std::vector<Run> runs;
    std::uint64_t bytes = 0;
    while (!drain_fifo_.empty() && drain_fifo_.front().file == file &&
           drain_fifo_.front().available_at <= t && bytes < params_.drain_unit) {
      const LogEntry e = drain_fifo_.front();
      drain_fifo_.pop_front();
      for (const Run& p : RangePieces(fs.dirty, file, e.off, e.off + e.len)) {
        RangeRemove(fs.dirty, p.off, p.off + p.len);
        RangeAdd(fs.in_flight, p.off, p.off + p.len);
        dirty_bytes_ -= p.len;
        in_flight_bytes_ += p.len;
        if (!runs.empty() && runs.back().off + runs.back().len == p.off) {
          runs.back().len += p.len;  // coalesce contiguous pieces
        } else {
          runs.push_back(p);
        }
        bytes += p.len;
      }
    }
    if (runs.empty()) continue;  // superseded entries (range drained already)

    // The drain stream reads the unit off the staging flash and writes it
    // to the target; being serial, the op holds the stream for the longer
    // of the two.
    double flash = 0.0;
    double tcur = t;
    for (const Run& r : runs) {
      flash += staged_read_cost(r.off, r.len);
      tcur = target_.drain(file, r.off, r.len, tcur);
    }
    const double end = std::max(t + flash, tcur);
    ++stats_.drain_ops;
    stats_.drain_busy_seconds += end - t;
    if (ctx_ && ctx_->tracer) {
      ctx_->tracer->complete(obs::kBbDrainTrack, "drain", "bb", t, end,
                             {obs::Arg::Int("file", file),
                              obs::Arg::Int("bytes", bytes),
                              obs::Arg::Int("runs", runs.size())});
    }
    queue_.at(end, [this, runs = std::move(runs), bytes] {
      complete_drain(runs, bytes);
      drain_step();
    });
    return;
  }
  drain_active_ = false;
}

void BurstBuffer::complete_drain(const std::vector<Run>& runs, std::uint64_t bytes) {
  in_flight_bytes_ -= bytes;
  for (const Run& r : runs) {
    auto it = files_.find(r.file);
    if (it == files_.end()) continue;  // dropped while in flight
    RangeRemove(it->second.in_flight, r.off, r.off + r.len);
    stats_.bytes_drained += r.len;
    if (c_drained_) c_drained_->add(r.len);
    clean_fifo_.push_back(r);
    if (sink_) sink_(r.file, r.off, r.len);
  }
}

// -- Reads, barriers, unlink ------------------------------------------------

double BurstBuffer::read(std::uint64_t file, std::uint64_t off,
                         std::uint64_t len, double now, bool* hit) {
  queue_.run_until(now);
  auto it = files_.find(file);
  const bool resident =
      len > 0 && it != files_.end() && RangeCovers(it->second.resident, off, off + len);
  if (hit) *hit = resident;
  if (!resident) return now;
  return std::max(now, queue_.now()) + staged_read_cost(off, len);
}

double BurstBuffer::flush(double now) {
  queue_.run_until(now);
  maybe_schedule_drain(queue_.now());
  while (undrained_bytes() > 0) {
    if (!queue_.step()) {
      throw std::logic_error("BurstBuffer: flush cannot make drain progress");
    }
  }
  const double done = std::max(now, queue_.now());
  if (ctx_ && ctx_->tracer && done > now) {
    ctx_->tracer->complete(obs::kBbIngestTrack, "flush_barrier", "bb", now, done);
  }
  return done;
}

void BurstBuffer::drop_file(std::uint64_t file) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  for (const auto& [s, e] : it->second.dirty) dirty_bytes_ -= e - s;
  for (const auto& [s, e] : it->second.resident) resident_bytes_ -= e - s;
  // In-flight bytes stay in the global counter until their completion
  // event fires (which finds the file gone and skips the sink).
  files_.erase(it);
  std::erase_if(drain_fifo_, [file](const LogEntry& e) { return e.file == file; });
  std::erase_if(clean_fifo_, [file](const Run& r) { return r.file == file; });
}

}  // namespace pdsi::bb
