// Where a burst buffer drains to.
//
// The drain scheduler is single-threaded (it lives on the burst buffer's
// event queue), so a target sees a serial stream of large sequential
// writes with nondecreasing timestamps — exactly the precondition the
// simulated-PFS server clocks require. Two implementations:
//   * FixedRateDrainTarget — analytic bandwidth/latency model for unit
//     tests and closed-form sweeps;
//   * MakePfsDrainTarget   — stripes each drain unit over the simulated
//     pdsi::pfs cluster's object storage servers (pfs_drain_target.cc).
#pragma once

#include <cstdint>
#include <memory>

namespace pdsi::pfs {
class PfsCluster;
}

namespace pdsi::bb {

class DrainTarget {
 public:
  virtual ~DrainTarget() = default;

  /// Persists [off, off+len) of `file` arriving at time `now`; returns the
  /// completion time (>= now). Calls arrive with nondecreasing `now`.
  virtual double drain(std::uint64_t file, std::uint64_t off,
                       std::uint64_t len, double now) = 0;
};

/// Constant-bandwidth target: completion = now + latency + len / bandwidth.
class FixedRateDrainTarget final : public DrainTarget {
 public:
  explicit FixedRateDrainTarget(double bytes_per_second,
                                double per_op_latency_s = 0.0)
      : bw_(bytes_per_second), latency_(per_op_latency_s) {}

  double drain(std::uint64_t, std::uint64_t, std::uint64_t len,
               double now) override {
    return now + latency_ + static_cast<double>(len) / bw_;
  }

 private:
  double bw_;
  double latency_;
};

/// Drains through the simulated parallel file system: each unit is striped
/// over the cluster's OSS set and charged against their disk/NIC/CPU
/// clocks, so drain bandwidth, contention, and aggregation behaviour come
/// from the same server model every other pfs experiment uses.
std::unique_ptr<DrainTarget> MakePfsDrainTarget(pfs::PfsCluster& cluster);

}  // namespace pdsi::bb
