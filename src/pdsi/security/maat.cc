#include "pdsi/security/maat.h"

#include <algorithm>
#include <cmath>

namespace pdsi::security {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

bool Permits(Rights rights, Rights op) {
  return (static_cast<std::uint8_t>(rights) & static_cast<std::uint8_t>(op)) ==
         static_cast<std::uint8_t>(op);
}

std::uint64_t DigestSet(const std::vector<std::uint64_t>& ids) {
  // XOR of mixed ids: order-independent, collision-resistant enough for
  // the model (a real system uses a Merkle digest).
  std::uint64_t d = 0x6d61617421ULL;  // "maat!"
  for (std::uint64_t id : ids) d ^= Mix(id + 0x9e3779b97f4a7c15ULL);
  return d;
}

std::uint64_t Authority::mac_of(const Capability& cap) const {
  std::uint64_t h = secret_;
  h = Mix(h ^ cap.client_set_digest);
  h = Mix(h ^ cap.file_set_digest);
  h = Mix(h ^ static_cast<std::uint64_t>(cap.rights));
  h = Mix(h ^ static_cast<std::uint64_t>(cap.epoch));
  h = Mix(h ^ static_cast<std::uint64_t>(std::llround(cap.expiry * 1e6)));
  return h;
}

Capability Authority::issue(const std::vector<std::uint64_t>& clients,
                            const std::vector<std::uint64_t>& files,
                            Rights rights, double expiry) const {
  Capability cap;
  cap.client_set_digest = DigestSet(clients);
  cap.file_set_digest = DigestSet(files);
  cap.rights = rights;
  cap.expiry = expiry;
  cap.epoch = epoch_;
  cap.mac = mac_of(cap);
  return cap;
}

Status Authority::verify(const Capability& cap, std::uint64_t client,
                         const std::vector<std::uint64_t>& clients,
                         std::uint64_t file,
                         const std::vector<std::uint64_t>& files, Rights op,
                         double now) const {
  if (cap.mac != mac_of(cap)) return Errc::invalid;          // forged/tampered
  if (cap.epoch != epoch_) return Errc::stale;               // revoked
  if (now > cap.expiry) return Errc::stale;                  // expired
  if (!Permits(cap.rights, op)) return Errc::invalid;        // wrong rights
  if (DigestSet(clients) != cap.client_set_digest) return Errc::invalid;
  if (DigestSet(files) != cap.file_set_digest) return Errc::invalid;
  if (std::find(clients.begin(), clients.end(), client) == clients.end()) {
    return Errc::invalid;  // presenter not in the authorised set
  }
  if (std::find(files.begin(), files.end(), file) == files.end()) {
    return Errc::invalid;  // target not covered
  }
  return Status::Ok();
}

}  // namespace pdsi::security
