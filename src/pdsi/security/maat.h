// Maat-style scalable security for object storage (§4.2.4 "Scalable
// Security and Quota"; Leung SC'07, UCSC).
//
// The problem: strong per-I/O authorization across thousands of OSDs
// without a round trip to a central authority per operation. The UCSC
// approach: the metadata server issues *capabilities* — signed tokens a
// client presents to storage devices, verified locally. The innovations
// this module models:
//  * merged capabilities: one token authorises a SET of clients on a SET
//    of files (their "group opens" integration — N-rank shared-file jobs
//    cost one token, not N x files);
//  * expiry + epoch revocation instead of per-token revocation lists;
//  * measured overhead "at most 6-7% on workloads with shared files,
//    typical 1-2%" — reproduced by bench/ext11_security.
//
// The MAC is a keyed 64-bit hash (stand-in for HMAC at model fidelity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/common/result.h"

namespace pdsi::security {

enum class Rights : std::uint8_t {
  read = 1,
  write = 2,
  read_write = 3,
};

/// True if `rights` permits `op`.
bool Permits(Rights rights, Rights op);

/// A signed authorisation token. Client/file sets are represented by
/// their digests; holders present the matching sets when exercising it.
struct Capability {
  std::uint64_t client_set_digest = 0;
  std::uint64_t file_set_digest = 0;
  Rights rights = Rights::read;
  double expiry = 0.0;          ///< absolute time
  std::uint32_t epoch = 0;      ///< revocation epoch at issue time
  std::uint64_t mac = 0;
};

/// Order-independent digest of an id set.
std::uint64_t DigestSet(const std::vector<std::uint64_t>& ids);

/// The metadata server's authority: issues and verifies capabilities.
class Authority {
 public:
  explicit Authority(std::uint64_t secret) : secret_(secret) {}

  std::uint32_t epoch() const { return epoch_; }

  /// Revokes every outstanding capability (e.g., permission change).
  void bump_epoch() { ++epoch_; }

  Capability issue(const std::vector<std::uint64_t>& clients,
                   const std::vector<std::uint64_t>& files, Rights rights,
                   double expiry) const;

  /// OSD-side check: is `client` allowed to do `op` on `file` at `now`?
  /// The presenter supplies the client/file sets backing the digests.
  Status verify(const Capability& cap, std::uint64_t client,
                const std::vector<std::uint64_t>& clients, std::uint64_t file,
                const std::vector<std::uint64_t>& files, Rights op,
                double now) const;

 private:
  std::uint64_t mac_of(const Capability& cap) const;

  std::uint64_t secret_;
  std::uint32_t epoch_ = 1;
};

}  // namespace pdsi::security
