#include "pdsi/ninjat/ninjat.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace pdsi::ninjat {

Image::Image(int width, int height)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height * 3, 255) {}

void Image::set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  const std::size_t at = (static_cast<std::size_t>(y) * width_ + x) * 3;
  pixels_[at] = r;
  pixels_[at + 1] = g;
  pixels_[at + 2] = b;
}

Status Image::write_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Errc::io_error;
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  return out.good() ? Status::Ok() : Status(Errc::io_error);
}

void RankColor(std::uint32_t rank, std::uint8_t* r, std::uint8_t* g, std::uint8_t* b) {
  // Golden-angle hue walk, full saturation, varied value.
  const double hue = std::fmod(static_cast<double>(rank) * 137.50776405, 360.0);
  const double v = 0.75 + 0.25 * ((rank % 3) / 2.0);
  const double c = v;
  const double hp = hue / 60.0;
  const double x = c * (1.0 - std::abs(std::fmod(hp, 2.0) - 1.0));
  double rr = 0, gg = 0, bb = 0;
  switch (static_cast<int>(hp)) {
    case 0: rr = c; gg = x; break;
    case 1: rr = x; gg = c; break;
    case 2: gg = c; bb = x; break;
    case 3: gg = x; bb = c; break;
    case 4: rr = x; bb = c; break;
    default: rr = c; bb = x; break;
  }
  *r = static_cast<std::uint8_t>(rr * 255);
  *g = static_cast<std::uint8_t>(gg * 255);
  *b = static_cast<std::uint8_t>(bb * 255);
}

Image RenderTimeOffset(const workload::WriteTrace& trace, RenderOptions opts) {
  Image img(opts.width, opts.height);
  if (trace.empty()) return img;
  double t_max = 0.0;
  std::uint64_t off_max = 0;
  for (const auto& e : trace) {
    t_max = std::max(t_max, e.end);
    off_max = std::max(off_max, e.offset + e.length);
  }
  if (t_max <= 0.0 || off_max == 0) return img;

  for (const auto& e : trace) {
    std::uint8_t r, g, b;
    RankColor(e.rank, &r, &g, &b);
    const int x0 = static_cast<int>(e.start / t_max * (opts.width - 1));
    const int x1 = static_cast<int>(e.end / t_max * (opts.width - 1));
    const int y0 = static_cast<int>(static_cast<double>(e.offset) / off_max *
                                    (opts.height - 1));
    const int y1 = static_cast<int>(static_cast<double>(e.offset + e.length) /
                                    off_max * (opts.height - 1));
    // y axis points up: offset 0 at the bottom.
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) img.set(x, opts.height - 1 - y, r, g, b);
    }
  }
  return img;
}

Image RenderFileMap(const workload::WriteTrace& trace, std::uint64_t file_size,
                    RenderOptions opts) {
  Image img(opts.width, opts.height);
  if (file_size == 0) return img;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(opts.width) * static_cast<std::uint64_t>(opts.height);
  const double bytes_per_cell = static_cast<double>(file_size) / static_cast<double>(cells);

  for (const auto& e : trace) {
    std::uint8_t r, g, b;
    RankColor(e.rank, &r, &g, &b);
    const std::uint64_t c0 =
        static_cast<std::uint64_t>(static_cast<double>(e.offset) / bytes_per_cell);
    const std::uint64_t c1 = static_cast<std::uint64_t>(
        static_cast<double>(e.offset + e.length - 1) / bytes_per_cell);
    for (std::uint64_t c = c0; c <= c1 && c < cells; ++c) {
      img.set(static_cast<int>(c % opts.width), static_cast<int>(c / opts.width), r,
              g, b);
    }
  }
  return img;
}

std::string AsciiFileMap(const workload::WriteTrace& trace, std::uint64_t file_size,
                         int cols, int rows) {
  const std::uint64_t cells = static_cast<std::uint64_t>(cols) * rows;
  std::string grid(cells, '.');
  if (file_size > 0) {
    const double bytes_per_cell =
        static_cast<double>(file_size) / static_cast<double>(cells);
    for (const auto& e : trace) {
      const std::uint64_t c0 =
          static_cast<std::uint64_t>(static_cast<double>(e.offset) / bytes_per_cell);
      const std::uint64_t c1 = static_cast<std::uint64_t>(
          static_cast<double>(e.offset + e.length - 1) / bytes_per_cell);
      for (std::uint64_t c = c0; c <= c1 && c < cells; ++c) {
        grid[c] = static_cast<char>('a' + e.rank % 26);
      }
    }
  }
  std::string out;
  out.reserve(cells + rows);
  for (int r = 0; r < rows; ++r) {
    out.append(grid, static_cast<std::size_t>(r) * cols, cols);
    out.push_back('\n');
  }
  return out;
}

}  // namespace pdsi::ninjat
