// Ninjat: visualisation of concurrent writes to a shared file (Fig. 15).
//
// Two views, as in the report:
//  * time/offset — each write drawn at (virtual time, logical offset),
//    coloured by writer rank; strided N-1 shows as interleaved bands.
//  * file map — the file as a linear array wrapped into rows, each byte
//    coloured by the rank that wrote it; N-1 strided shows as the
//    characteristic repeating rank stripes.
//
// PPM (P6) output keeps the renderer dependency-free; an ASCII file map
// serves tests and terminal inspection.
#pragma once

#include <cstdint>
#include <string>

#include "pdsi/common/result.h"
#include "pdsi/workload/driver.h"

namespace pdsi::ninjat {

struct RenderOptions {
  int width = 800;
  int height = 400;
};

/// Minimal RGB raster with PPM output.
class Image {
 public:
  Image(int width, int height);
  int width() const { return width_; }
  int height() const { return height_; }
  void set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b);
  Status write_ppm(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<std::uint8_t> pixels_;
};

/// Distinct colour per rank (golden-angle hue walk).
void RankColor(std::uint32_t rank, std::uint8_t* r, std::uint8_t* g, std::uint8_t* b);

/// Time/offset scatter of the trace.
Image RenderTimeOffset(const workload::WriteTrace& trace, RenderOptions opts = {});

/// Wrapped-file view: which rank wrote each region.
Image RenderFileMap(const workload::WriteTrace& trace, std::uint64_t file_size,
                    RenderOptions opts = {});

/// Terminal file map: one char per cell, 'a'+rank%26, '.' for holes.
std::string AsciiFileMap(const workload::WriteTrace& trace, std::uint64_t file_size,
                         int cols, int rows);

}  // namespace pdsi::ninjat
