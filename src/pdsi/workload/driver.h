// Checkpoint driver: runs a CheckpointSpec against the simulated parallel
// file system, either writing directly (the baseline the paper's Fig. 8
// measures against) or through PLFS middleware, and reports virtual-time
// bandwidth. Optionally captures a write trace for Ninjat.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pdsi/obs/obs.h"
#include "pdsi/pfs/config.h"
#include "pdsi/plfs/options.h"
#include "pdsi/workload/patterns.h"

namespace pdsi::workload {

/// One traced write, in virtual time (Ninjat input; PLFS's "maps" traces).
struct TraceEvent {
  std::uint32_t rank;
  double start;
  double end;
  std::uint64_t offset;
  std::uint64_t length;
};

using WriteTrace = std::vector<TraceEvent>;

struct CheckpointResult {
  double seconds = 0.0;        ///< barrier-to-barrier virtual time
  std::uint64_t bytes = 0;     ///< payload written
  double bandwidth() const { return seconds > 0 ? static_cast<double>(bytes) / seconds : 0.0; }
};

/// Direct writes through PfsClient (what the unmodified application does).
/// `obs` (optional, must outlive the call) observes the whole run: PFS
/// server spans plus per-rank client activity.
CheckpointResult RunDirectCheckpoint(const pfs::PfsConfig& cfg,
                                     const CheckpointSpec& spec,
                                     WriteTrace* trace = nullptr,
                                     obs::Context* obs = nullptr);

/// The same logical writes routed through PLFS containers.
CheckpointResult RunPlfsCheckpoint(const pfs::PfsConfig& cfg,
                                   const CheckpointSpec& spec,
                                   const plfs::Options& options = {},
                                   WriteTrace* trace = nullptr,
                                   obs::Context* obs = nullptr);

/// Reads the whole logical file back N-way after a PLFS checkpoint
/// (restart path); returns the read phase result.
struct PlfsRoundTripResult {
  CheckpointResult write;
  CheckpointResult read;
};
PlfsRoundTripResult RunPlfsRoundTrip(const pfs::PfsConfig& cfg,
                                     const CheckpointSpec& spec,
                                     const plfs::Options& options = {},
                                     obs::Context* obs = nullptr);

}  // namespace pdsi::workload
