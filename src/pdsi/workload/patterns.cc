#include "pdsi/workload/patterns.h"

namespace pdsi::workload {

std::string_view PatternName(Pattern p) {
  switch (p) {
    case Pattern::n1_strided: return "N-1 strided";
    case Pattern::n1_segmented: return "N-1 segmented";
    case Pattern::nn: return "N-N";
  }
  return "?";
}

std::vector<WriteOp> WritesForRank(const CheckpointSpec& spec, std::uint32_t rank) {
  std::vector<WriteOp> ops;
  ops.reserve(spec.records_per_rank);
  for (std::uint32_t k = 0; k < spec.records_per_rank; ++k) {
    std::uint64_t off = 0;
    switch (spec.pattern) {
      case Pattern::n1_strided:
        off = (static_cast<std::uint64_t>(k) * spec.ranks + rank) * spec.record_bytes;
        break;
      case Pattern::n1_segmented:
        off = static_cast<std::uint64_t>(rank) * spec.bytes_per_rank() +
              static_cast<std::uint64_t>(k) * spec.record_bytes;
        break;
      case Pattern::nn:
        off = static_cast<std::uint64_t>(k) * spec.record_bytes;
        break;
    }
    ops.push_back({off, spec.record_bytes});
  }
  return ops;
}

std::string TargetPath(const CheckpointSpec& spec, std::uint32_t rank,
                       const std::string& base) {
  if (spec.pattern == Pattern::nn) return base + "." + std::to_string(rank);
  return base;
}

std::vector<AppModel> PaperApps(std::uint32_t ranks) {
  std::vector<AppModel> apps;

  // FLASH-IO: HDF5 output dominated by very small unaligned header and
  // attribute writes interleaved with block data. The report quotes two
  // orders of magnitude for the FLASH benchmark.
  {
    AppModel a;
    a.name = "FLASH-io";
    a.spec = {Pattern::n1_strided, ranks, 1 * 1024 + 7, 256};
    a.paper_speedup = 100.0;
    a.note = "tiny unaligned HDF5-style records";
    apps.push_back(a);
  }
  // Chombo: AMR dumps with medium, still-unaligned records; one order of
  // magnitude in the report.
  {
    AppModel a;
    a.name = "Chombo";
    a.spec = {Pattern::n1_strided, ranks, 64 * 1024 + 129, 96};
    a.paper_speedup = 10.0;
    a.note = "medium unaligned AMR records";
    apps.push_back(a);
  }
  // LANL production codes: 5x-28x band. Two synthetic stand-ins at the
  // band edges.
  {
    AppModel a;
    a.name = "LANL-app-A";
    a.spec = {Pattern::n1_strided, ranks, 47 * 1024, 96};
    a.paper_speedup = 28.0;
    a.note = "strided 47 KiB records (anon. LANL code)";
    apps.push_back(a);
  }
  {
    AppModel a;
    a.name = "LANL-app-B";
    a.spec = {Pattern::n1_strided, ranks, 256 * 1024 + 512, 48};
    a.paper_speedup = 5.0;
    a.note = "larger unaligned records";
    apps.push_back(a);
  }
  // S3D: Fortran-IO N-1 segmented restart files.
  {
    AppModel a;
    a.name = "S3D";
    a.spec = {Pattern::n1_segmented, ranks, 128 * 1024 + 64, 48};
    a.paper_speedup = 10.0;
    a.note = "Fortran N-1 segmented restart";
    apps.push_back(a);
  }
  return apps;
}

}  // namespace pdsi::workload
