// Checkpoint I/O patterns.
//
// The report's taxonomy (and Ninjat's visualisations, Fig. 15): N ranks
// write either one shared file (N-1) with their records *strided*
// (interleaved round-robin) or *segmented* (contiguous per-rank regions),
// or one private file each (N-N). PLFS's value concentrates on N-1
// strided with small unaligned records — the layout data-formatting
// libraries like HDF5/NetCDF produce.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pdsi::workload {

enum class Pattern {
  n1_strided,    ///< shared file, records interleaved round-robin
  n1_segmented,  ///< shared file, contiguous region per rank
  nn,            ///< file per process
};

std::string_view PatternName(Pattern p);

/// One application write (to the rank's target file).
struct WriteOp {
  std::uint64_t offset;
  std::uint64_t length;
};

struct CheckpointSpec {
  Pattern pattern = Pattern::n1_strided;
  std::uint32_t ranks = 64;
  std::uint64_t record_bytes = 47 * 1024;  ///< per-record payload
  std::uint32_t records_per_rank = 32;

  std::uint64_t bytes_per_rank() const {
    return record_bytes * records_per_rank;
  }
  std::uint64_t total_bytes() const {
    return bytes_per_rank() * ranks;
  }
};

/// The write sequence rank `rank` issues under `spec`. For N-N patterns
/// the offsets are within the rank's private file.
std::vector<WriteOp> WritesForRank(const CheckpointSpec& spec, std::uint32_t rank);

/// Target path for the rank ("/ckpt" shared, "/ckpt.R" for N-N).
std::string TargetPath(const CheckpointSpec& spec, std::uint32_t rank,
                       const std::string& base = "/ckpt");

/// Models of the applications the report evaluates (Fig. 8): each is a
/// record size + count shaped like the code's real checkpoint, plus the
/// speedup the paper reports for calibration tables.
struct AppModel {
  std::string name;
  CheckpointSpec spec;
  double paper_speedup;  ///< what the report quotes for PLFS
  std::string note;
};

/// Scaled-down models (rank count is set by the caller): FLASH-like tiny
/// unaligned records, Chombo-like medium AMR records, plus synthetic LANL
/// production codes in the 5-28x band.
std::vector<AppModel> PaperApps(std::uint32_t ranks);

}  // namespace pdsi::workload
