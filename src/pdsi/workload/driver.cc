#include "pdsi/workload/driver.h"

#include <cassert>
#include <mutex>
#include <thread>

#include "pdsi/pfs/client.h"
#include "pdsi/pfs/cluster.h"
#include "pdsi/plfs/pfs_backend.h"
#include "pdsi/plfs/plfs.h"

namespace pdsi::workload {
namespace {

std::vector<std::size_t> AllActors(std::uint32_t n) {
  std::vector<std::size_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

/// Runs `body(rank)` on one thread per rank over a fresh scheduler and
/// returns (t_open_barrier, t_close_barrier) as measured by two barrier
/// crossings that `body` triggers via the provided callbacks.
struct RankHarness {
  explicit RankHarness(std::uint32_t ranks)
      : sched(ranks), barrier(sched, AllActors(ranks)) {}

  sim::VirtualScheduler sched;
  sim::VirtualBarrier barrier;
};

}  // namespace

CheckpointResult RunDirectCheckpoint(const pfs::PfsConfig& cfg,
                                     const CheckpointSpec& spec,
                                     WriteTrace* trace, obs::Context* obs) {
  pfs::PfsConfig config = cfg;
  config.store_data = false;  // timing-only at benchmark scales
  RankHarness h(spec.ranks);
  pfs::PfsCluster cluster(config, h.sched, nullptr, obs);

  double t_begin = 0.0, t_end = 0.0;
  std::mutex trace_mu;
  std::vector<std::thread> threads;
  threads.reserve(spec.ranks);
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    threads.emplace_back([&, r] {
      pfs::PfsClient client(cluster, r);
      const double t0 = h.barrier.arrive(r);
      if (r == 0) t_begin = t0;

      pfs::FileHandle fh = -1;
      const std::string path = TargetPath(spec, r);
      if (spec.pattern == Pattern::nn) {
        fh = *client.create(path);
      } else if (r == 0) {
        fh = *client.create(path);
        h.barrier.arrive(r);
      } else {
        h.barrier.arrive(r);
        fh = *client.open(path);
      }

      Bytes payload(spec.record_bytes);
      WriteTrace local;
      for (const WriteOp& op : WritesForRank(spec, r)) {
        const double s = client.now();
        [[maybe_unused]] auto st = client.write(fh, op.offset, payload);
        assert(st.ok());
        if (trace) local.push_back({r, s, client.now(), op.offset, op.length});
      }
      client.close(fh);

      const double t1 = h.barrier.arrive(r);
      if (r == 0) t_end = t1;
      if (trace) {
        std::lock_guard<std::mutex> lk(trace_mu);
        trace->insert(trace->end(), local.begin(), local.end());
      }
      h.sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();

  return {t_end - t_begin, spec.total_bytes()};
}

CheckpointResult RunPlfsCheckpoint(const pfs::PfsConfig& cfg,
                                   const CheckpointSpec& spec,
                                   const plfs::Options& options,
                                   WriteTrace* trace, obs::Context* obs) {
  pfs::PfsConfig config = cfg;
  config.store_data = false;
  RankHarness h(spec.ranks);
  pfs::PfsCluster cluster(config, h.sched, nullptr, obs);
  plfs::Options opts = options;
  opts.obs = obs;
  plfs::WriteClock clock{1};

  double t_begin = 0.0, t_end = 0.0;
  std::mutex trace_mu;
  std::vector<std::thread> threads;
  threads.reserve(spec.ranks);
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    threads.emplace_back([&, r] {
      auto backend = plfs::MakePfsBackend(cluster, r);
      const double t0 = h.barrier.arrive(r);
      if (r == 0) t_begin = t0;

      // N-N through PLFS still gets a container per rank; N-1 shares one.
      const std::string path = TargetPath(spec, r);
      auto writer = plfs::Writer::Open(*backend, path, r, opts, clock);
      assert(writer.ok());

      Bytes payload(spec.record_bytes);
      WriteTrace local;
      pfs::PfsClient probe(cluster, r);  // clock probe only (no I/O issued)
      for (const WriteOp& op : WritesForRank(spec, r)) {
        const double s = probe.now();
        [[maybe_unused]] auto st = (*writer)->write(op.offset, payload);
        assert(st.ok());
        if (trace) local.push_back({r, s, probe.now(), op.offset, op.length});
      }
      (*writer)->close();

      const double t1 = h.barrier.arrive(r);
      if (r == 0) t_end = t1;
      if (trace) {
        std::lock_guard<std::mutex> lk(trace_mu);
        trace->insert(trace->end(), local.begin(), local.end());
      }
      h.sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();

  return {t_end - t_begin, spec.total_bytes()};
}

PlfsRoundTripResult RunPlfsRoundTrip(const pfs::PfsConfig& cfg,
                                     const CheckpointSpec& spec,
                                     const plfs::Options& options,
                                     obs::Context* obs) {
  assert(spec.pattern != Pattern::nn && "round trip reads the shared file");
  pfs::PfsConfig config = cfg;
  config.store_data = true;  // restart must read real bytes
  RankHarness h(spec.ranks);
  pfs::PfsCluster cluster(config, h.sched, nullptr, obs);
  plfs::Options base_opts = options;
  base_opts.obs = obs;
  plfs::WriteClock clock{1};

  PlfsRoundTripResult result;
  result.write.bytes = spec.total_bytes();
  result.read.bytes = spec.total_bytes();
  double tw0 = 0.0, tw1 = 0.0, tr1 = 0.0;

  std::vector<std::thread> threads;
  threads.reserve(spec.ranks);
  for (std::uint32_t r = 0; r < spec.ranks; ++r) {
    threads.emplace_back([&, r] {
      auto backend = plfs::MakePfsBackend(cluster, r);
      const double t0 = h.barrier.arrive(r);
      if (r == 0) tw0 = t0;

      {
        auto writer = plfs::Writer::Open(*backend, "/ckpt", r, base_opts, clock);
        assert(writer.ok());
        Bytes payload(spec.record_bytes);
        for (const WriteOp& op : WritesForRank(spec, r)) {
          (*writer)->write(op.offset, payload);
        }
        (*writer)->close();
      }
      const double t1 = h.barrier.arrive(r);
      if (r == 0) tw1 = t1;

      // Restart: every rank merges the index and reads its 1/N slice.
      {
        plfs::Options ropts = base_opts;
        ropts.obs_track = obs::kReaderTrackBase + r;
        auto reader = plfs::Reader::Open(*backend, "/ckpt", ropts);
        assert(reader.ok());
        const std::uint64_t total = (*reader)->size();
        const std::uint64_t slice = total / spec.ranks;
        Bytes buf(static_cast<std::size_t>(slice));
        (*reader)->read(static_cast<std::uint64_t>(r) * slice, buf);
      }
      const double t2 = h.barrier.arrive(r);
      if (r == 0) tr1 = t2;
      h.sched.finish(r);
    });
  }
  for (auto& t : threads) t.join();

  result.write.seconds = tw1 - tw0;
  result.read.seconds = tr1 - tw1;
  return result;
}

}  // namespace pdsi::workload
