// Power-managed disk archives (§4.2.4 "Power Management"; Pergamum,
// Storer FAST'08; Adams MASCOTS'10; Wildani PDSW'10).
//
// UCSC's archival line: replace tape with mostly-asleep disks. A disk
// costs ~8 W spinning and well under 1 W spun down, but each wake costs a
// spin-up (seconds of latency, a burst of energy, and wear). The findings
// this module reproduces:
//  * semantic grouping — placing related data together — lets most disks
//    sleep through a workload's bursts (Wildani: semantic placement for
//    power management);
//  * counterintuitively, MORE disks can SAVE power when grouping confines
//    each burst to one spindle (Adams: "situations where utilizing more
//    devices ... may save power");
//  * under very low request rates placement stops mattering — standby
//    power dominates (Adams' other headline finding).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/common/rng.h"

namespace pdsi::pergamum {

enum class Placement {
  scattered,  ///< objects spread round-robin regardless of relatedness
  grouped,    ///< a group's objects co-located on one spindle
};

std::string_view PlacementName(Placement p);

struct DiskPower {
  double active_w = 8.0;
  double standby_w = 0.6;
  double spinup_j = 120.0;      ///< energy burst per wake
  double spinup_s = 10.0;       ///< wake latency
  double idle_timeout_s = 60.0; ///< spin down after this much quiet
};

struct ArchiveParams {
  std::uint32_t disks = 16;
  std::uint32_t groups = 64;            ///< related-data collections
  std::uint32_t objects_per_group = 200;
  Placement placement = Placement::grouped;
  DiskPower power;

  // Workload: bursts arrive per group (a retrieval session touches many
  // objects of one collection), Poisson across groups.
  double burst_rate_per_hour = 6.0;     ///< archive-wide burst arrivals
  std::uint32_t reads_per_burst = 20;
  double intra_burst_gap_s = 2.0;
  double duration_hours = 24.0;
  std::uint64_t seed = 1;
};

struct ArchiveResult {
  double energy_wh = 0.0;
  double mean_latency_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t spinups = 0;
  double mean_disks_spinning = 0.0;

  double average_power_w(double hours) const { return energy_wh / hours; }
};

/// Runs the archive workload to completion (event-driven, deterministic).
ArchiveResult RunArchive(const ArchiveParams& params);

}  // namespace pdsi::pergamum
