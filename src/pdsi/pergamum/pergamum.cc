#include "pdsi/pergamum/pergamum.h"

#include <algorithm>

#include "pdsi/sim/event_queue.h"

namespace pdsi::pergamum {

std::string_view PlacementName(Placement p) {
  switch (p) {
    case Placement::scattered: return "scattered";
    case Placement::grouped: return "grouped";
  }
  return "?";
}

namespace {

class ArchiveSim {
 public:
  explicit ArchiveSim(const ArchiveParams& p)
      : p_(p), rng_(p.seed), disks_(p.disks) {}

  ArchiveResult run() {
    const double total_s = p_.duration_hours * 3600.0;
    // Schedule group bursts over the horizon.
    const double mean_gap = 3600.0 / p_.burst_rate_per_hour;
    for (double t = rng_.exponential(mean_gap); t < total_s;
         t += rng_.exponential(mean_gap)) {
      const std::uint32_t group = static_cast<std::uint32_t>(rng_.below(p_.groups));
      queue_.at(t, [this, group] { start_burst(group); });
    }
    queue_.run(200'000'000ULL);
    // Account the tail: every disk's state persists to the horizon.
    for (auto& d : disks_) settle(d, total_s);

    ArchiveResult r;
    r.requests = requests_;
    r.spinups = spinups_;
    r.mean_latency_s = requests_ ? latency_sum_ / requests_ : 0.0;
    double joules = spinups_ * p_.power.spinup_j;
    double spinning_integral = 0.0;
    for (const auto& d : disks_) {
      joules += d.active_seconds * p_.power.active_w +
                (total_s - d.active_seconds) * p_.power.standby_w;
      spinning_integral += d.active_seconds;
    }
    r.energy_wh = joules / 3600.0;
    r.mean_disks_spinning = spinning_integral / total_s;
    return r;
  }

 private:
  struct Disk {
    bool spinning = false;
    double state_since = 0.0;     ///< when the current state began
    double last_activity = 0.0;
    double active_seconds = 0.0;  ///< accumulated spinning time
    sim::EventQueue::EventId spin_down_timer = 0;
  };

  std::uint32_t disk_for(std::uint32_t group, std::uint32_t object) const {
    if (p_.placement == Placement::grouped) return group % p_.disks;
    return (group * p_.objects_per_group + object) % p_.disks;
  }

  /// Folds the disk's current state interval into its accumulators.
  void settle(Disk& d, double now) {
    if (d.spinning) d.active_seconds += now - d.state_since;
    d.state_since = now;
  }

  void arm_spin_down(std::uint32_t disk) {
    Disk& d = disks_[disk];
    if (d.spin_down_timer) queue_.cancel(d.spin_down_timer);
    d.spin_down_timer =
        queue_.after(p_.power.idle_timeout_s, [this, disk] {
          Disk& dd = disks_[disk];
          dd.spin_down_timer = 0;
          settle(dd, queue_.now());
          dd.spinning = false;
        });
  }

  /// Serves one read on `disk`; returns its latency.
  double serve(std::uint32_t disk) {
    Disk& d = disks_[disk];
    const double now = queue_.now();
    double latency = 0.03;  // seek + transfer on an idle archive disk
    if (!d.spinning) {
      settle(d, now);
      d.spinning = true;
      ++spinups_;
      latency += p_.power.spinup_s;
    }
    d.last_activity = now;
    arm_spin_down(disk);
    return latency;
  }

  void start_burst(std::uint32_t group) {
    // A retrieval session: reads_per_burst objects of the group, paced.
    for (std::uint32_t i = 0; i < p_.reads_per_burst; ++i) {
      const std::uint32_t object =
          static_cast<std::uint32_t>(rng_.below(p_.objects_per_group));
      const double at = queue_.now() + i * p_.intra_burst_gap_s;
      const std::uint32_t disk = disk_for(group, object);
      queue_.at(at, [this, disk] {
        ++requests_;
        latency_sum_ += serve(disk);
      });
    }
  }

  ArchiveParams p_;
  Rng rng_;
  sim::EventQueue queue_;
  std::vector<Disk> disks_;
  std::uint64_t requests_ = 0;
  std::uint64_t spinups_ = 0;
  double latency_sum_ = 0.0;
};

}  // namespace

ArchiveResult RunArchive(const ArchiveParams& params) {
  return ArchiveSim(params).run();
}

}  // namespace pdsi::pergamum
