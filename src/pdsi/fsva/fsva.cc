#include "pdsi/fsva/fsva.h"

namespace pdsi::fsva {

std::string_view MountName(Mount m) {
  switch (m) {
    case Mount::native: return "native in-kernel client";
    case Mount::fsva_hypercall: return "FSVA (hypercall per message)";
    case Mount::fsva_shared_ring: return "FSVA (shared-memory rings)";
  }
  return "?";
}

namespace {

/// Forwarding cost for one request/response pair.
double ForwardingSeconds(const CostModel& m, Mount mount) {
  switch (mount) {
    case Mount::native: return 0.0;
    case Mount::fsva_hypercall: return 2.0 * m.hypercall_s;  // there and back
    case Mount::fsva_shared_ring: return 2.0 * m.ring_notify_s;
  }
  return 0.0;
}

double DataMovementSeconds(const CostModel& m, Mount mount, std::uint64_t bytes) {
  if (mount == Mount::native) return 0.0;
  if (m.zero_copy_grants) return 0.0;  // pages flipped between VMs
  return static_cast<double>(bytes) / m.copy_bw_bytes;
}

}  // namespace

double MetadataOpSeconds(const CostModel& m, Mount mount) {
  return m.vfs_dispatch_s + ForwardingSeconds(m, mount) + m.backend_small_op_s;
}

double DataOpSeconds(const CostModel& m, Mount mount, std::uint64_t bytes) {
  return m.vfs_dispatch_s + ForwardingSeconds(m, mount) +
         DataMovementSeconds(m, mount, bytes) +
         static_cast<double>(bytes) / m.backend_data_bw;
}

double WorkloadSeconds(const CostModel& m, Mount mount, const Workload& w) {
  return static_cast<double>(w.metadata_ops) * MetadataOpSeconds(m, mount) +
         static_cast<double>(w.data_ops) *
             DataOpSeconds(m, mount, w.bytes_per_data_op);
}

double Slowdown(const CostModel& m, Mount mount, const Workload& w) {
  return WorkloadSeconds(m, mount, w) / WorkloadSeconds(m, Mount::native, w);
}

std::vector<Workload> PaperWorkloads() {
  return {
      // untar + build tree: dominated by creates/stats/small writes.
      {"untar+compile (metadata heavy)", 200000, 20000, 8 * 1024},
      // streaming grep over big files.
      {"grep (streaming reads)", 2000, 30000, 1024 * 1024},
      // checkpoint: large sequential writes.
      {"checkpoint (streaming writes)", 200, 12000, 4 * 1024 * 1024},
      // postmark-ish mix.
      {"postmark (mixed)", 80000, 40000, 64 * 1024},
  };
}

}  // namespace pdsi::fsva
