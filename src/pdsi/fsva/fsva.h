// File System Virtual Appliances (§4.2.1 / Fig. 6; Abd-El-Malek,
// CMU-PDL-08-106 / 09-102).
//
// Problem: parallel file system client code lives in the client OS kernel
// and must be re-ported for every kernel release. FSVA moves the real
// client into a dedicated VM with a frozen OS; the application OS keeps
// only a simple forwarding client. The cost is an inter-VM hop per VFS
// operation; with shared-memory rings (instead of hypervisor calls per
// message) the report expects this "need not slow down applications
// significantly".
//
// This model prices the three mount options per operation and evaluates
// them over workload mixes, reproducing the claim and showing where the
// overhead concentrates (metadata-heavy workloads).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdsi::fsva {

enum class Mount {
  native,            ///< in-kernel PFS client
  fsva_hypercall,    ///< forwarding via hypervisor per message
  fsva_shared_ring,  ///< forwarding via shared-memory rings
};

std::string_view MountName(Mount m);

struct CostModel {
  double vfs_dispatch_s = 1.5e-6;     ///< in-kernel VFS overhead (always)
  double hypercall_s = 12e-6;         ///< VM world switch per message
  double ring_notify_s = 2.5e-6;      ///< shared-ring doorbell (amortised)
  double copy_bw_bytes = 4e9;         ///< inter-VM data copy bandwidth
  bool zero_copy_grants = true;       ///< page-flip bulk data (no copy)
  double backend_small_op_s = 250e-6; ///< PFS RPC for a metadata op
  double backend_data_bw = 300e6;     ///< PFS streaming bandwidth
};

/// Per-operation wall time under a mount.
double MetadataOpSeconds(const CostModel& m, Mount mount);
double DataOpSeconds(const CostModel& m, Mount mount, std::uint64_t bytes);

/// A workload as an operation mix per "unit of work".
struct Workload {
  std::string name;
  std::uint64_t metadata_ops = 0;
  std::uint64_t data_ops = 0;
  std::uint64_t bytes_per_data_op = 0;
};

/// Wall seconds to run the workload once.
double WorkloadSeconds(const CostModel& m, Mount mount, const Workload& w);

/// Slowdown of `mount` relative to the native client.
double Slowdown(const CostModel& m, Mount mount, const Workload& w);

/// The evaluation mixes: untar/compile-like (metadata heavy), grep-like
/// (streaming reads), checkpoint-like (streaming writes), and a
/// mixed "postmark" style load.
std::vector<Workload> PaperWorkloads();

}  // namespace pdsi::fsva
