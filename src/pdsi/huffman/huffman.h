// Canonical Huffman coding for checkpoint compression.
//
// Two report threads meet here: the PLFS extension list item "compress
// checkpoints on the fly" (§1.1 item 3) and the SNL summer project that
// ran a block Huffman compressor at ~250 MB/s (GPU) with ~2x faster
// decompression (§5.6.1). The Fig. 5 analysis also shows ~25-50%/yr
// better checkpoint compression "makes the problem go away".
//
// This is a real, self-contained codec: canonical codes (lengths limited
// to kMaxCodeBits), a 256-symbol alphabet, block framing with stored
// fallback for incompressible blocks, and a table-driven decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdsi/common/bytes.h"

namespace pdsi::huffman {

inline constexpr int kMaxCodeBits = 15;

/// Code lengths (0 = symbol absent) for a canonical code over the byte
/// alphabet, built from frequencies; lengths are limited by iterative
/// frequency flattening (near-optimal, always <= kMaxCodeBits).
std::vector<std::uint8_t> BuildCodeLengths(const std::uint64_t (&freq)[256]);

/// Compresses `input` as independent blocks of `block_bytes`. Blocks that
/// do not shrink are stored raw. Never fails; worst case adds a small
/// per-block header. `shuffle_stride` > 1 applies a byte-plane transpose
/// before coding (stride 8 groups the exponent/high-mantissa bytes of
/// doubles together — the standard trick for floating-point state).
/// `xor_delta` additionally XORs each stride-sized group with its
/// predecessor before the shuffle (FPC-style): smooth numeric series
/// become mostly-zero high planes.
Bytes Compress(std::span<const std::uint8_t> input, std::size_t block_bytes = 1 << 20,
               std::uint8_t shuffle_stride = 0, bool xor_delta = false);

/// Decompresses a Compress() stream. Throws std::invalid_argument on a
/// corrupt stream.
Bytes Decompress(std::span<const std::uint8_t> compressed);

/// Synthetic checkpoint contents: double-precision state arrays with
/// spatial smoothness (what makes science checkpoints compressible) plus
/// an incompressible-fraction knob.
Bytes SyntheticCheckpoint(std::size_t bytes, double noise_fraction,
                          std::uint64_t seed);

}  // namespace pdsi::huffman
