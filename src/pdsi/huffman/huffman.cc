#include "pdsi/huffman/huffman.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <stdexcept>

#include "pdsi/common/rng.h"

namespace pdsi::huffman {
namespace {

// ---------------------------------------------------------------------------
// Code construction.

struct Node {
  std::uint64_t weight;
  int symbol;  // -1 for internal
  int left = -1, right = -1;
};

/// Depth-assigns lengths for one frequency set; returns max length.
int TreeLengths(const std::uint64_t (&freq)[256], std::vector<std::uint8_t>& lengths) {
  std::vector<Node> nodes;
  auto cmp = [&nodes](int a, int b) { return nodes[a].weight > nodes[b].weight; };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], s});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
  }
  lengths.assign(256, 0);
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    lengths[nodes[0].symbol] = 1;
    return 1;
  }
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    Node parent{nodes[a].weight + nodes[b].weight, -1, a, b};
    nodes.push_back(parent);
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  // Iterative depth walk from the root.
  int max_len = 0;
  std::vector<std::pair<int, int>> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    auto [n, depth] = stack.back();
    stack.pop_back();
    if (nodes[n].symbol >= 0) {
      lengths[nodes[n].symbol] = static_cast<std::uint8_t>(depth);
      max_len = std::max(max_len, depth);
    } else {
      stack.push_back({nodes[n].left, depth + 1});
      stack.push_back({nodes[n].right, depth + 1});
    }
  }
  return max_len;
}

/// Canonical codes (code value per symbol) from lengths.
void CanonicalCodes(const std::vector<std::uint8_t>& lengths,
                    std::vector<std::uint16_t>& codes) {
  codes.assign(256, 0);
  std::uint32_t count[kMaxCodeBits + 1] = {0};
  for (int s = 0; s < 256; ++s) ++count[lengths[s]];
  count[0] = 0;
  std::uint32_t next[kMaxCodeBits + 1] = {0};
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeBits; ++len) {
    code = (code + count[len - 1]) << 1;
    next[len] = code;
  }
  for (int s = 0; s < 256; ++s) {
    if (lengths[s] > 0) codes[s] = static_cast<std::uint16_t>(next[lengths[s]]++);
  }
}

// ---------------------------------------------------------------------------
// Bit I/O (MSB-first within the stream, matching canonical code order).

class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}

  void put(std::uint32_t bits, int n) {
    acc_ = (acc_ << n) | bits;
    fill_ += n;
    while (fill_ >= 8) {
      fill_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> fill_));
    }
  }

  void flush() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - fill_)));
      fill_ = 0;
      acc_ = 0;
    }
  }

 private:
  Bytes& out_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

/// Flat 2^kMaxCodeBits lookup: peek kMaxCodeBits bits, emit symbol+length
/// in one step. Amortised over 1 MiB blocks the build cost is noise and
/// decoding outruns encoding (the report's ~2x decompression headroom).
struct FastDecoder {
  struct Entry {
    std::uint8_t symbol;
    std::uint8_t length;  // 0 marks an invalid code
  };
  std::vector<Entry> table;

  FastDecoder(const std::vector<std::uint8_t>& lengths,
              const std::vector<std::uint16_t>& codes) {
    table.assign(1u << kMaxCodeBits, {0, 0});
    for (int s = 0; s < 256; ++s) {
      const int len = lengths[s];
      if (len == 0) continue;
      const std::uint32_t base = static_cast<std::uint32_t>(codes[s])
                                 << (kMaxCodeBits - len);
      const std::uint32_t span = 1u << (kMaxCodeBits - len);
      for (std::uint32_t i = 0; i < span; ++i) {
        table[base + i] = {static_cast<std::uint8_t>(s),
                           static_cast<std::uint8_t>(len)};
      }
    }
  }
};

/// Buffered MSB-first reader with zero padding past the end (exact symbol
/// count bounds consumption; invalid codes surface as length-0 entries).
class FastBitReader {
 public:
  explicit FastBitReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t peek15() {
    while (fill_ < kMaxCodeBits) {
      const std::uint8_t byte = pos_ < data_.size() ? data_[pos_] : 0;
      ++pos_;
      acc_ = (acc_ << 8) | byte;
      fill_ += 8;
    }
    return static_cast<std::uint32_t>((acc_ >> (fill_ - kMaxCodeBits)) &
                                      ((1u << kMaxCodeBits) - 1));
  }

  void consume(int n) { fill_ -= n; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int fill_ = 0;
};

void Put32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t Get32(std::span<const std::uint8_t> in, std::size_t at) {
  if (at + 4 > in.size()) throw std::invalid_argument("huffman: truncated header");
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

/// Byte-plane transpose: out[plane][i] = in[i*stride + plane].
Bytes Shuffle(std::span<const std::uint8_t> in, std::uint8_t stride) {
  Bytes out(in.size());
  const std::size_t groups = in.size() / stride;
  std::size_t at = 0;
  for (std::uint8_t plane = 0; plane < stride; ++plane) {
    for (std::size_t g = 0; g < groups; ++g) out[at++] = in[g * stride + plane];
  }
  // Tail bytes pass through.
  for (std::size_t i = groups * stride; i < in.size(); ++i) out[at++] = in[i];
  return out;
}

void XorDelta(std::span<std::uint8_t> data, std::uint8_t stride) {
  if (data.size() < 2 * static_cast<std::size_t>(stride)) return;
  const std::size_t groups = data.size() / stride;
  for (std::size_t g = groups; g-- > 1;) {
    for (std::uint8_t b = 0; b < stride; ++b) {
      data[g * stride + b] ^= data[(g - 1) * stride + b];
    }
  }
}

void UnXorDelta(std::span<std::uint8_t> data, std::uint8_t stride) {
  const std::size_t groups = data.size() / stride;
  for (std::size_t g = 1; g < groups; ++g) {
    for (std::uint8_t b = 0; b < stride; ++b) {
      data[g * stride + b] ^= data[(g - 1) * stride + b];
    }
  }
}

void Unshuffle(std::span<std::uint8_t> data, std::uint8_t stride) {
  Bytes tmp(data.begin(), data.end());
  const std::size_t groups = data.size() / stride;
  std::size_t at = 0;
  for (std::uint8_t plane = 0; plane < stride; ++plane) {
    for (std::size_t g = 0; g < groups; ++g) data[g * stride + plane] = tmp[at++];
  }
}

}  // namespace

std::vector<std::uint8_t> BuildCodeLengths(const std::uint64_t (&freq)[256]) {
  // Length-limit by iterative frequency flattening: rebuild with halved
  // weights until the deepest code fits (near-optimal in practice).
  std::uint64_t f[256];
  std::memcpy(f, freq, sizeof(f));
  std::vector<std::uint8_t> lengths;
  for (;;) {
    const int max_len = TreeLengths(f, lengths);
    if (max_len <= kMaxCodeBits) return lengths;
    for (auto& v : f) {
      if (v > 0) v = (v + 1) >> 1;
    }
  }
}

Bytes Compress(std::span<const std::uint8_t> input, std::size_t block_bytes,
               std::uint8_t shuffle_stride, bool xor_delta) {
  Bytes out;
  Put32(out, static_cast<std::uint32_t>(input.size() & 0xffffffffu));
  Put32(out, static_cast<std::uint32_t>(input.size() >> 32));
  out.push_back(shuffle_stride);
  out.push_back(xor_delta && shuffle_stride > 1 ? 1 : 0);

  for (std::size_t at = 0; at < input.size() || (input.empty() && at == 0);) {
    const std::size_t n = std::min(block_bytes, input.size() - at);
    if (n == 0) break;
    Bytes shuffled;
    std::span<const std::uint8_t> block = input.subspan(at, n);
    if (shuffle_stride > 1) {
      shuffled.assign(block.begin(), block.end());
      if (xor_delta) XorDelta(shuffled, shuffle_stride);
      shuffled = Shuffle(shuffled, shuffle_stride);
      block = shuffled;
    }

    std::uint64_t freq[256] = {0};
    for (std::uint8_t b : block) ++freq[b];
    const auto lengths = BuildCodeLengths(freq);
    std::vector<std::uint16_t> codes;
    CanonicalCodes(lengths, codes);

    // Encode into a scratch buffer to decide huffman-vs-stored.
    Bytes coded;
    coded.reserve(n);
    {
      BitWriter bw(coded);
      for (std::uint8_t b : block) bw.put(codes[b], lengths[b]);
      bw.flush();
    }
    const std::size_t huff_total = coded.size() + 128;  // + nibble table

    Put32(out, static_cast<std::uint32_t>(n));
    if (huff_total >= n) {
      out.push_back(0);  // stored
      out.insert(out.end(), block.begin(), block.end());
    } else {
      out.push_back(1);  // huffman
      for (int s = 0; s < 256; s += 2) {
        out.push_back(static_cast<std::uint8_t>(lengths[s] | (lengths[s + 1] << 4)));
      }
      Put32(out, static_cast<std::uint32_t>(coded.size()));
      out.insert(out.end(), coded.begin(), coded.end());
    }
    at += n;
  }
  return out;
}

Bytes Decompress(std::span<const std::uint8_t> compressed) {
  std::size_t at = 0;
  const std::uint64_t total = Get32(compressed, 0) |
                              (static_cast<std::uint64_t>(Get32(compressed, 4)) << 32);
  // Sanity bound: 1-bit codes expand at most 8x plus framing.
  if (total > compressed.size() * 16 + 64) {
    throw std::invalid_argument("huffman: implausible stream header");
  }
  at = 8;
  if (at >= compressed.size() && total > 0) {
    throw std::invalid_argument("huffman: truncated stream");
  }
  const std::uint8_t shuffle_stride = total > 0 ? compressed[at] : 0;
  at += 1;
  if (at >= compressed.size() && total > 0) {
    throw std::invalid_argument("huffman: truncated stream");
  }
  const bool xor_delta = total > 0 && compressed[at] != 0;
  at += 1;
  Bytes out;
  out.reserve(total);
  while (out.size() < total) {
    const std::size_t block_start = out.size();
    const std::uint32_t n = Get32(compressed, at);
    at += 4;
    if (at >= compressed.size()) throw std::invalid_argument("huffman: truncated block");
    const std::uint8_t mode = compressed[at++];
    if (mode == 0) {
      if (at + n > compressed.size()) {
        throw std::invalid_argument("huffman: truncated stored block");
      }
      out.insert(out.end(), compressed.begin() + at, compressed.begin() + at + n);
      at += n;
    } else if (mode == 1) {
      std::vector<std::uint8_t> lengths(256);
      if (at + 128 > compressed.size()) {
        throw std::invalid_argument("huffman: truncated code table");
      }
      for (int s = 0; s < 256; s += 2) {
        const std::uint8_t packed = compressed[at + s / 2];
        lengths[s] = packed & 0xf;
        lengths[s + 1] = packed >> 4;
      }
      at += 128;
      const std::uint32_t coded_len = Get32(compressed, at);
      at += 4;
      if (at + coded_len > compressed.size()) {
        throw std::invalid_argument("huffman: truncated coded block");
      }
      std::vector<std::uint16_t> codes;
      CanonicalCodes(lengths, codes);
      FastDecoder decoder(lengths, codes);
      FastBitReader br(compressed.subspan(at, coded_len));
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto e = decoder.table[br.peek15()];
        if (e.length == 0) throw std::invalid_argument("huffman: invalid code");
        br.consume(e.length);
        out.push_back(e.symbol);
      }
      at += coded_len;
    } else {
      throw std::invalid_argument("huffman: bad block mode");
    }
    if (shuffle_stride > 1) {
      Unshuffle(std::span(out).subspan(block_start), shuffle_stride);
      if (xor_delta) UnXorDelta(std::span(out).subspan(block_start), shuffle_stride);
    }
  }
  if (out.size() != total) throw std::invalid_argument("huffman: size mismatch");
  return out;
}

Bytes SyntheticCheckpoint(std::size_t bytes, double noise_fraction,
                          std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t doubles = bytes / sizeof(double);
  std::vector<double> field(doubles);
  // Smooth physical field: a random walk with small increments, so
  // neighbouring state values share exponents and high mantissa bytes.
  double v = rng.uniform(0.5, 2.0);
  for (std::size_t i = 0; i < doubles; ++i) {
    // Neighbouring cells differ at the ~2^-25 level: a well-resolved
    // field (this is what FPC-style predictors exploit).
    v += rng.uniform(-3e-8, 3e-8);
    field[i] = v;
  }
  Bytes out(doubles * sizeof(double));
  std::memcpy(out.data(), field.data(), out.size());
  out.resize(bytes, 0);
  // A fraction of the state is effectively random (hashes, RNG states,
  // turbulent regions).
  const std::size_t noisy = static_cast<std::size_t>(noise_fraction * bytes);
  for (std::size_t i = 0; i < noisy; ++i) {
    out[rng.below(bytes)] = static_cast<std::uint8_t>(rng.below(256));
  }
  return out;
}

}  // namespace pdsi::huffman
