// Spyglass-style partitioned metadata search (§4.2.2 "Content Indexing";
// Leung FAST'09).
//
// The UCSC result: partition the namespace into subtree partitions, keep
// a small signature ("summary") per partition so queries skip partitions
// that cannot contain matches, and index within partitions — yielding
// metadata search 10-1000x faster than a general DBMS table scan, with
// the bonus that a corrupted partition is rebuilt alone rather than
// rescanning the whole file system.
//
// The model here is functional, not simulated: real data structures over
// an in-memory metadata crawl, benchmarked against the "database"
// baseline (a full-table scan, which is what a DBMS without a matching
// composite index degenerates to for these multi-attribute queries).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pdsi::spyglass {

/// One file's metadata record (what a crawl of the namespace yields).
struct FileMeta {
  std::string path;
  std::uint32_t subtree = 0;    ///< top-level project/user subtree
  std::uint64_t size = 0;
  std::uint32_t owner = 0;
  std::uint32_t extension = 0;  ///< interned extension id
  double mtime = 0.0;
};

/// A conjunctive metadata query; unset fields match everything.
struct Query {
  std::optional<std::uint32_t> owner;
  std::optional<std::uint32_t> extension;
  std::optional<std::uint64_t> min_size;
  std::optional<std::uint64_t> max_size;
  std::optional<double> min_mtime;

  bool matches(const FileMeta& f) const {
    if (owner && f.owner != *owner) return false;
    if (extension && f.extension != *extension) return false;
    if (min_size && f.size < *min_size) return false;
    if (max_size && f.size > *max_size) return false;
    if (min_mtime && f.mtime < *min_mtime) return false;
    return true;
  }
};

/// Baseline: the full scan a general-purpose DBMS performs for ad hoc
/// multi-attribute predicates.
class ScanBaseline {
 public:
  explicit ScanBaseline(std::vector<FileMeta> files) : files_(std::move(files)) {}
  std::vector<const FileMeta*> search(const Query& q) const;
  std::size_t records() const { return files_.size(); }

 private:
  std::vector<FileMeta> files_;
};

/// Partitioned index with per-partition summaries.
class SpyglassIndex {
 public:
  struct Options {
    /// Target records per partition (subtrees split when larger).
    std::size_t partition_capacity = 50000;
  };

  /// 512-bit per-partition attribute signature.
  using Signature = std::array<std::uint64_t, 8>;

  SpyglassIndex(std::vector<FileMeta> files, Options options);

  std::vector<const FileMeta*> search(const Query& q) const;

  std::size_t partition_count() const { return partitions_.size(); }

  /// Partitions whose summaries let the last search() skip them.
  std::size_t last_skipped() const { return last_skipped_; }

  /// Simulates corruption of one partition and rebuilds only it from the
  /// supplied crawl source. Returns records rescanned — the partial
  /// rebuild advantage (vs records() for a full rebuild).
  std::size_t rebuild_partition(std::size_t partition,
                                const std::vector<FileMeta>& crawl);

  std::size_t records() const;

 private:
  struct Summary {
    Signature owner_sig{};
    Signature extension_sig{};
    std::uint64_t min_size = ~0ULL;
    std::uint64_t max_size = 0;
    double max_mtime = 0.0;
  };

  struct Partition {
    std::uint32_t subtree;
    std::vector<FileMeta> by_owner;  ///< records sorted by (owner, ext)
    /// Posting list: extension -> record indices (for owner-less queries).
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_extension;
    Summary summary;
  };

  static void BuildPartition(Partition& p);
  static bool SummaryAdmits(const Summary& s, const Query& q);

  Options options_;
  std::vector<Partition> partitions_;
  mutable std::size_t last_skipped_ = 0;
};

/// Synthetic crawl: `files` records over `subtrees` project subtrees,
/// `owners` users and `extensions` file types, with realistic skew (each
/// owner and extension concentrated in few subtrees — the locality that
/// makes partition summaries effective).
std::vector<FileMeta> SyntheticCrawl(std::size_t files, std::uint32_t subtrees,
                                     std::uint32_t owners, std::uint32_t extensions,
                                     std::uint64_t seed);

}  // namespace pdsi::spyglass
