#include "pdsi/spyglass/spyglass.h"

#include <algorithm>

#include "pdsi/common/rng.h"

namespace pdsi::spyglass {
namespace {

std::uint32_t SigSlot(std::uint32_t value) {
  std::uint64_t z = value + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint32_t>(z >> 55);  // one of 512 bits
}

void SigSet(SpyglassIndex::Signature& sig, std::uint32_t value) {
  const std::uint32_t bit = SigSlot(value);
  sig[bit / 64] |= 1ULL << (bit % 64);
}

bool SigTest(const SpyglassIndex::Signature& sig, std::uint32_t value) {
  const std::uint32_t bit = SigSlot(value);
  return (sig[bit / 64] >> (bit % 64)) & 1;
}

}  // namespace

std::vector<const FileMeta*> ScanBaseline::search(const Query& q) const {
  std::vector<const FileMeta*> out;
  for (const auto& f : files_) {
    if (q.matches(f)) out.push_back(&f);
  }
  return out;
}

SpyglassIndex::SpyglassIndex(std::vector<FileMeta> files, Options options)
    : options_(options) {
  // Group by subtree, splitting oversized subtrees into capacity-bounded
  // partitions.
  std::sort(files.begin(), files.end(), [](const FileMeta& a, const FileMeta& b) {
    return a.subtree < b.subtree;
  });
  std::size_t at = 0;
  while (at < files.size()) {
    Partition p;
    p.subtree = files[at].subtree;
    while (at < files.size() && files[at].subtree == p.subtree &&
           p.by_owner.size() < options_.partition_capacity) {
      p.by_owner.push_back(std::move(files[at]));
      ++at;
    }
    BuildPartition(p);
    partitions_.push_back(std::move(p));
  }
}

void SpyglassIndex::BuildPartition(Partition& p) {
  std::sort(p.by_owner.begin(), p.by_owner.end(),
            [](const FileMeta& a, const FileMeta& b) {
              return std::tie(a.owner, a.extension) < std::tie(b.owner, b.extension);
            });
  p.by_extension.clear();
  for (std::uint32_t i = 0; i < p.by_owner.size(); ++i) {
    p.by_extension[p.by_owner[i].extension].push_back(i);
  }
  Summary s;
  for (const auto& f : p.by_owner) {
    SigSet(s.owner_sig, f.owner);
    SigSet(s.extension_sig, f.extension ^ 0x5bd1e995u);
    s.min_size = std::min(s.min_size, f.size);
    s.max_size = std::max(s.max_size, f.size);
    s.max_mtime = std::max(s.max_mtime, f.mtime);
  }
  p.summary = s;
}

bool SpyglassIndex::SummaryAdmits(const Summary& s, const Query& q) {
  if (q.owner && !SigTest(s.owner_sig, *q.owner)) return false;
  if (q.extension && !SigTest(s.extension_sig, *q.extension ^ 0x5bd1e995u)) {
    return false;
  }
  if (q.min_size && s.max_size < *q.min_size) return false;
  if (q.max_size && s.min_size > *q.max_size) return false;
  if (q.min_mtime && s.max_mtime < *q.min_mtime) return false;
  return true;
}

std::vector<const FileMeta*> SpyglassIndex::search(const Query& q) const {
  std::vector<const FileMeta*> out;
  last_skipped_ = 0;
  for (const auto& p : partitions_) {
    if (!SummaryAdmits(p.summary, q)) {
      ++last_skipped_;
      continue;
    }
    if (q.owner) {
      // Narrow to the owner's run via binary search on the sorted layout.
      auto lo = std::lower_bound(p.by_owner.begin(), p.by_owner.end(), *q.owner,
                                 [](const FileMeta& f, std::uint32_t owner) {
                                   return f.owner < owner;
                                 });
      for (auto it = lo; it != p.by_owner.end() && it->owner == *q.owner; ++it) {
        if (q.matches(*it)) out.push_back(&*it);
      }
    } else if (q.extension) {
      auto it = p.by_extension.find(*q.extension);
      if (it != p.by_extension.end()) {
        for (std::uint32_t i : it->second) {
          if (q.matches(p.by_owner[i])) out.push_back(&p.by_owner[i]);
        }
      }
    } else {
      for (const auto& f : p.by_owner) {
        if (q.matches(f)) out.push_back(&f);
      }
    }
  }
  return out;
}

std::size_t SpyglassIndex::rebuild_partition(std::size_t partition,
                                             const std::vector<FileMeta>& crawl) {
  Partition& p = partitions_.at(partition);
  const std::uint32_t subtree = p.subtree;
  p.by_owner.clear();
  std::size_t scanned = 0;
  for (const auto& f : crawl) {
    if (f.subtree == subtree) {
      p.by_owner.push_back(f);
      ++scanned;
    }
  }
  // (A real crawl visits only the subtree's directory; count its records.)
  BuildPartition(p);
  return scanned;
}

std::size_t SpyglassIndex::records() const {
  std::size_t n = 0;
  for (const auto& p : partitions_) n += p.by_owner.size();
  return n;
}

std::vector<FileMeta> SyntheticCrawl(std::size_t files, std::uint32_t subtrees,
                                     std::uint32_t owners, std::uint32_t extensions,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FileMeta> out;
  out.reserve(files);
  // Locality: each subtree is dominated by a handful of owners and file
  // types (a project directory belongs to a team and a code).
  std::vector<std::vector<std::uint32_t>> subtree_owners(subtrees);
  std::vector<std::vector<std::uint32_t>> subtree_exts(subtrees);
  for (std::uint32_t s = 0; s < subtrees; ++s) {
    const int k_owners = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < k_owners; ++i) {
      subtree_owners[s].push_back(static_cast<std::uint32_t>(rng.below(owners)));
    }
    const int k_exts = 2 + static_cast<int>(rng.below(5));
    for (int i = 0; i < k_exts; ++i) {
      subtree_exts[s].push_back(static_cast<std::uint32_t>(rng.below(extensions)));
    }
  }
  for (std::size_t i = 0; i < files; ++i) {
    FileMeta f;
    f.subtree = static_cast<std::uint32_t>(rng.below(subtrees));
    const auto& so = subtree_owners[f.subtree];
    const auto& se = subtree_exts[f.subtree];
    // Spatial locality is strong in real namespaces (the FAST'09
    // measurement study): ~98% of a subtree's files come from its
    // resident owners/types.
    f.owner = rng.chance(0.98) ? so[rng.below(so.size())]
                               : static_cast<std::uint32_t>(rng.below(owners));
    f.extension = rng.chance(0.98)
                      ? se[rng.below(se.size())]
                      : static_cast<std::uint32_t>(rng.below(extensions));
    f.size = static_cast<std::uint64_t>(rng.lognormal(std::log(32.0 * 1024), 2.0));
    f.mtime = rng.uniform(0.0, 365.0 * 86400);
    f.path = "/t" + std::to_string(f.subtree) + "/f" + std::to_string(i);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace pdsi::spyglass
