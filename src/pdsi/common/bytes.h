// Deterministic data patterns for write/read-back verification. PLFS tests
// must prove bit-exact reconstruction of a logical file from per-rank logs;
// these helpers generate content that encodes (rank, logical offset) so any
// index bug shows up as a pattern mismatch at a precise location.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pdsi {

using Bytes = std::vector<std::uint8_t>;

/// Byte at logical offset `off` written by `rank`: a mixed hash so that
/// both wrong-offset and wrong-writer errors are detected.
inline std::uint8_t PatternByte(std::uint32_t rank, std::uint64_t off) {
  std::uint64_t z = off + 0x9e3779b97f4a7c15ULL * (rank + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::uint8_t>(z >> 56);
}

/// Fills `out` with the pattern for [start, start + out.size()).
void FillPattern(std::uint32_t rank, std::uint64_t start, std::span<std::uint8_t> out);

/// Returns a freshly allocated patterned buffer.
Bytes MakePattern(std::uint32_t rank, std::uint64_t start, std::size_t len);

/// Returns the index of the first mismatching byte, or npos if all match.
inline constexpr std::size_t kNoMismatch = static_cast<std::size_t>(-1);
std::size_t FindPatternMismatch(std::uint32_t rank, std::uint64_t start,
                                std::span<const std::uint8_t> data);

/// FNV-1a content hash, for cheap whole-file equality checks.
std::uint64_t HashBytes(std::span<const std::uint8_t> data);

}  // namespace pdsi
