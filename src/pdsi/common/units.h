// Byte/time unit constants and human-readable formatting shared by all
// benchmark harnesses, so tables across figures use consistent notation.
#pragma once

#include <cstdint>
#include <string>

namespace pdsi {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;
inline constexpr std::uint64_t TiB = 1024ULL * GiB;
inline constexpr std::uint64_t PiB = 1024ULL * TiB;

/// Simulated time is kept in double seconds throughout; these helpers make
/// call sites self-describing.
inline constexpr double kMicrosecond = 1e-6;
inline constexpr double kMillisecond = 1e-3;
inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;
inline constexpr double kYear = 365.25 * kDay;

/// "4.0 KiB", "1.5 GiB" etc.
std::string FormatBytes(double bytes);

/// "123.4 MiB/s" etc.
std::string FormatRate(double bytes_per_second);

/// "12.3 us", "4.5 ms", "6.7 s", "2.1 h" — picks the natural unit.
std::string FormatDuration(double seconds);

/// "12.3K", "4.56M" for op counts / ops-per-second.
std::string FormatCount(double count);

}  // namespace pdsi
