// Deterministic pseudo-random number generation and the distributions used
// across the PDSI reproduction (failure models, file-size populations,
// workload jitter). All simulations seed explicitly so every benchmark and
// test is reproducible run-to-run.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace pdsi {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if
/// needed, but the member helpers below avoid libstdc++'s distribution
/// implementations, which are not stable across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises state from a 64-bit seed via SplitMix64, which
  /// guarantees the four words are well mixed even for tiny seeds.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (inverse-CDF method).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log1p(-u);
  }

  /// Weibull(shape k, scale lambda) via inverse CDF.
  double weibull(double shape, double scale) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return scale * std::pow(-std::log1p(-u), 1.0 / shape);
  }

  /// Standard normal via Box–Muller (one value per call; cached pair
  /// deliberately omitted to keep state minimal and replay simple).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal parameterised by the mu/sigma of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Pareto with given minimum and tail index alpha.
  double pareto(double minimum, double alpha) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return minimum / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang, used by the failure
  /// module for time-between-failure models.
  double gamma(double shape, double scale);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream, e.g. one per simulated rank.
  Rng fork() { return Rng((*this)() ^ 0xda3e39cb94b95bdbULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Zipf-distributed integers in [0, n): rank-frequency skew used for
/// directory hot spots and map-reduce key popularity. Precomputes the
/// harmonic normaliser once.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double skew);

  std::size_t operator()(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pdsi
