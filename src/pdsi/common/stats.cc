#include "pdsi/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pdsi {

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  cdf.reserve(samples.size());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse duplicates: keep the last (highest fraction) point per value.
    if (!cdf.empty() && cdf.back().value == samples[i]) {
      cdf.back().fraction = static_cast<double>(i + 1) / n;
    } else {
      cdf.push_back({samples[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

double CdfAt(const std::vector<CdfPoint>& cdf, double value) {
  if (cdf.empty()) return 0.0;
  auto it = std::upper_bound(cdf.begin(), cdf.end(), value,
                             [](double v, const CdfPoint& p) { return v < p.value; });
  if (it == cdf.begin()) return 0.0;
  return (it - 1)->fraction;
}

LogHistogram::LogHistogram(double smallest, double base)
    : smallest_(smallest), log_base_(std::log(base)) {
  if (smallest <= 0.0 || base <= 1.0) {
    throw std::invalid_argument("LogHistogram requires smallest > 0, base > 1");
  }
}

void LogHistogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < smallest_) {
    underflow_ += weight;
    return;
  }
  const std::size_t idx =
      static_cast<std::size_t>(std::log(x / smallest_) / log_base_);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += weight;
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  if (underflow_ > 0) out.push_back({0.0, smallest_, underflow_});
  double lo = smallest_;
  const double base = std::exp(log_base_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double hi = lo * base;
    if (counts_[i] > 0) out.push_back({lo, hi, counts_[i]});
    lo = hi;
  }
  return out;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return smallest_;
  double lo = smallest_;
  const double base = std::exp(log_base_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    const double hi = lo * base;
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      // Log-linear interpolation inside the bucket.
      return lo * std::pow(base, frac);
    }
    cum = next;
    lo = hi;
  }
  return lo;
}

LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("FitLinear requires two equal-length series");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit{};
  fit.slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  double sse = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    sse += r * r;
  }
  fit.r2 = sst > 0.0 ? 1.0 - sse / sst : 1.0;
  return fit;
}

WeibullFit FitWeibull(const std::vector<double>& samples) {
  WeibullFit fit{1.0, 1.0, false};
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (double s : samples) {
    if (s > 0.0) xs.push_back(s);
  }
  if (xs.size() < 3) return fit;

  const double n = static_cast<double>(xs.size());
  double sum_log = 0.0;
  for (double x : xs) sum_log += std::log(x);
  const double mean_log = sum_log / n;

  // Profile-likelihood equation in the shape k:
  //   g(k) = sum(x^k log x)/sum(x^k) - 1/k - mean(log x) = 0
  double k = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double x : xs) {
      const double xk = std::pow(x, k);
      const double lx = std::log(x);
      s0 += xk;
      s1 += xk * lx;
      s2 += xk * lx * lx;
    }
    const double g = s1 / s0 - 1.0 / k - mean_log;
    const double gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    const double step = g / gp;
    k -= step;
    if (k <= 1e-6) k = 1e-6;
    if (std::abs(step) < 1e-10) {
      fit.converged = true;
      break;
    }
  }
  double s0 = 0.0;
  for (double x : xs) s0 += std::pow(x, k);
  fit.shape = k;
  fit.scale = std::pow(s0 / n, 1.0 / k);
  return fit;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace pdsi
