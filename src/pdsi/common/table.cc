#include "pdsi/common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "pdsi/common/stats.h"

namespace pdsi {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::row_numeric(const std::vector<double>& cells, int decimals) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double c : cells) out.push_back(FormatDouble(c, decimals));
  row(std::move(out));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      os << (c + 1 < cells.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace pdsi
