#include "pdsi/common/result.h"

namespace pdsi {

std::string_view ErrcName(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::exists: return "exists";
    case Errc::not_dir: return "not_dir";
    case Errc::is_dir: return "is_dir";
    case Errc::not_empty: return "not_empty";
    case Errc::invalid: return "invalid";
    case Errc::bad_handle: return "bad_handle";
    case Errc::no_space: return "no_space";
    case Errc::io_error: return "io_error";
    case Errc::not_supported: return "not_supported";
    case Errc::busy: return "busy";
    case Errc::stale: return "stale";
  }
  return "unknown";
}

}  // namespace pdsi
