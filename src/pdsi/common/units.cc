#include "pdsi/common/units.h"

#include <cmath>
#include <cstdio>

namespace pdsi {
namespace {

std::string WithUnit(double v, const char* unit) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, unit);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, unit);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int i = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && i < 5) {
    v /= 1024.0;
    ++i;
  }
  return WithUnit(v, units[i]);
}

std::string FormatRate(double bytes_per_second) {
  static const char* units[] = {"B/s", "KiB/s", "MiB/s", "GiB/s", "TiB/s", "PiB/s"};
  int i = 0;
  double v = bytes_per_second;
  while (std::abs(v) >= 1024.0 && i < 5) {
    v /= 1024.0;
    ++i;
  }
  return WithUnit(v, units[i]);
}

std::string FormatDuration(double seconds) {
  const double a = std::abs(seconds);
  if (a < 1e-6) return WithUnit(seconds * 1e9, "ns");
  if (a < 1e-3) return WithUnit(seconds * 1e6, "us");
  if (a < 1.0) return WithUnit(seconds * 1e3, "ms");
  if (a < 120.0) return WithUnit(seconds, "s");
  if (a < 2.0 * kHour) return WithUnit(seconds / kMinute, "min");
  if (a < 2.0 * kDay) return WithUnit(seconds / kHour, "h");
  if (a < kYear) return WithUnit(seconds / kDay, "d");
  return WithUnit(seconds / kYear, "yr");
}

std::string FormatCount(double count) {
  const double a = std::abs(count);
  if (a < 1e3) return WithUnit(count, "");
  if (a < 1e6) return WithUnit(count / 1e3, "K");
  if (a < 1e9) return WithUnit(count / 1e6, "M");
  return WithUnit(count / 1e9, "G");
}

}  // namespace pdsi
