// POSIX-flavoured error handling for the file-system layers. File-system
// operations fail for reasons callers must branch on (ENOENT vs EEXIST),
// so they return Result<T>/Status rather than throwing; exceptions are
// reserved for programming errors (precondition violations).
#pragma once

#include <cassert>
#include <optional>
#include <string_view>
#include <utility>

namespace pdsi {

/// Error codes mirroring the POSIX errors the paper's file systems surface.
enum class Errc {
  ok = 0,
  not_found,        // ENOENT
  exists,           // EEXIST
  not_dir,          // ENOTDIR
  is_dir,           // EISDIR
  not_empty,        // ENOTEMPTY
  invalid,          // EINVAL
  bad_handle,       // EBADF
  no_space,         // ENOSPC
  io_error,         // EIO
  not_supported,    // ENOTSUP
  busy,             // EBUSY
  stale,            // ESTALE: client mapping out of date (GIGA+)
};

std::string_view ErrcName(Errc e);

/// Value-or-error, modelled on std::expected (not in C++20's library).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), errc_(Errc::ok) {}  // NOLINT
  Result(Errc errc) : errc_(errc) { assert(errc != Errc::ok); }   // NOLINT

  bool ok() const { return errc_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return errc_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::optional<T> value_;
  Errc errc_;
};

/// Error-only result for operations without a payload.
class Status {
 public:
  Status() : errc_(Errc::ok) {}
  Status(Errc errc) : errc_(errc) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return errc_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return errc_; }

 private:
  Errc errc_;
};

}  // namespace pdsi
