// Console table rendering: every benchmark harness prints the rows the
// paper's figure/table reports using this one formatter, so output across
// experiments is uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pdsi {

/// A right-padded text table with a header row and a rule line.
///
///   Table t({"ranks", "direct", "plfs", "speedup"});
///   t.row({"512", "84.2 MiB/s", "1.1 GiB/s", "13.4x"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a data row; pads or truncates to the header width.
  void row(std::vector<std::string> cells);

  /// Convenience: convert each double with the given precision.
  void row_numeric(const std::vector<double>& cells, int decimals = 2);

  std::size_t rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints "== title ==" banners so multi-table bench output is scannable.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace pdsi
