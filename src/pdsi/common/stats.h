// Streaming and batch statistics used by every benchmark harness:
// online mean/variance, percentile extraction, log-scale histograms,
// empirical CDFs, and least-squares fits for the failure-analysis module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pdsi {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max, suitable for billions of samples.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const OnlineStats& other);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set with linear interpolation; q in [0, 1].
/// Copies the input (callers usually want the data intact for CDFs).
double Percentile(std::vector<double> samples, double q);

/// Empirical CDF: sorted (value, cumulative fraction) points.
struct CdfPoint {
  double value;
  double fraction;
};

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples);

/// Evaluate an empirical CDF at a value (fraction of samples <= value).
double CdfAt(const std::vector<CdfPoint>& cdf, double value);

/// Logarithmically-bucketed histogram, for latency and size distributions
/// spanning many orders of magnitude.
class LogHistogram {
 public:
  /// Buckets are [base^k, base^(k+1)) starting at `smallest`.
  explicit LogHistogram(double smallest = 1.0, double base = 2.0);

  void add(double x, std::uint64_t weight = 1);
  std::uint64_t total() const { return total_; }

  struct Bucket {
    double lo;
    double hi;
    std::uint64_t count;
  };
  /// Non-empty buckets in ascending order.
  std::vector<Bucket> buckets() const;

  /// Approximate quantile from bucket boundaries (log interpolation).
  double quantile(double q) const;

 private:
  double smallest_;
  double log_base_;
  std::uint64_t underflow_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Simple linear regression y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept;
  double slope;
  double r2;
};

LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

/// Weibull(shape, scale) fit by maximum likelihood (Newton on the shape
/// profile equation). Used to re-derive the FAST'07 finding that disk
/// replacement inter-arrivals have shape < 1 (decreasing hazard).
struct WeibullFit {
  double shape;
  double scale;
  bool converged;
};

WeibullFit FitWeibull(const std::vector<double>& samples);

/// Format helper: fixed decimals, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int decimals);

}  // namespace pdsi
