#include "pdsi/common/bytes.h"

namespace pdsi {

void FillPattern(std::uint32_t rank, std::uint64_t start, std::span<std::uint8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = PatternByte(rank, start + i);
  }
}

Bytes MakePattern(std::uint32_t rank, std::uint64_t start, std::size_t len) {
  Bytes b(len);
  FillPattern(rank, start, b);
  return b;
}

std::size_t FindPatternMismatch(std::uint32_t rank, std::uint64_t start,
                                std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != PatternByte(rank, start + i)) return i;
  }
  return kNoMismatch;
}

std::uint64_t HashBytes(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace pdsi
