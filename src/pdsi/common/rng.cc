#include "pdsi/common/rng.h"

#include <algorithm>
#include <stdexcept>

namespace pdsi {

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Rng::gamma requires positive shape/scale");
  }
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

ZipfGenerator::ZipfGenerator(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator requires n > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfGenerator::operator()(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace pdsi
