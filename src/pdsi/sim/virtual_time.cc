#include "pdsi/sim/virtual_time.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pdsi::sim {

VirtualScheduler::VirtualScheduler(std::size_t num_actors)
    : times_(num_actors, 0.0), active_(num_actors, true), active_count_(num_actors) {
  if (num_actors == 0) throw std::invalid_argument("scheduler needs >= 1 actor");
}

double VirtualScheduler::now(std::size_t actor) const {
  std::lock_guard<std::mutex> lk(mu_);
  return times_[actor];
}

double VirtualScheduler::global_now() const {
  std::lock_guard<std::mutex> lk(mu_);
  double t = kTimeInfinity;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (active_[i]) t = std::min(t, times_[i]);
  }
  return t == kTimeInfinity ? 0.0 : t;
}

bool VirtualScheduler::is_min_locked(std::size_t actor) const {
  const double t = times_[actor];
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (!active_[i] || i == actor) continue;
    if (times_[i] < t || (times_[i] == t && i < actor)) return false;
  }
  return true;
}

void VirtualScheduler::atomically(std::size_t actor,
                                  const std::function<double(double)>& fn) {
  std::unique_lock<std::mutex> lk(mu_);
  assert(active_[actor] && "finished actor issued a simulated operation");
  cv_.wait(lk, [&] { return is_min_locked(actor); });
  const double now = times_[actor];
  const double next = fn(now);
  assert(next >= now && "virtual time must not go backwards");
  times_[actor] = next;
  cv_.notify_all();
}

void VirtualScheduler::advance(std::size_t actor, double dt) {
  assert(dt >= 0.0);
  atomically(actor, [dt](double now) { return now + dt; });
}

void VirtualScheduler::finish(std::size_t actor) {
  std::lock_guard<std::mutex> lk(mu_);
  if (active_[actor]) {
    active_[actor] = false;
    --active_count_;
    cv_.notify_all();
  }
}

bool VirtualScheduler::all_finished() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_count_ == 0;
}

VirtualBarrier::VirtualBarrier(VirtualScheduler& sched,
                               std::vector<std::size_t> participants)
    : sched_(sched), participants_(std::move(participants)) {
  if (participants_.empty()) throw std::invalid_argument("empty barrier");
}

double VirtualBarrier::arrive(std::size_t actor) {
  std::unique_lock<std::mutex> lk(sched_.mu_);
  assert(std::find(participants_.begin(), participants_.end(), actor) !=
         participants_.end());
  // Park: remove from min-calculation so non-participants keep moving.
  sched_.active_[actor] = false;
  --sched_.active_count_;
  // Parking may unblock another actor's min-check; wake waiters.
  sched_.cv_.notify_all();
  max_time_ = std::max(max_time_, sched_.times_[actor]);
  ++arrived_;
  const std::uint64_t my_generation = generation_;
  if (arrived_ == participants_.size()) {
    // Last arriver completes the barrier atomically: everyone resumes at
    // the maximum arrival time.
    for (std::size_t p : participants_) {
      sched_.times_[p] = max_time_;
      sched_.active_[p] = true;
      ++sched_.active_count_;
    }
    arrived_ = 0;
    const double synced = max_time_;
    max_time_ = 0.0;
    ++generation_;
    sched_.cv_.notify_all();
    return synced;
  }
  sched_.cv_.wait(lk, [&] { return generation_ != my_generation; });
  return sched_.times_[actor];
}

}  // namespace pdsi::sim
