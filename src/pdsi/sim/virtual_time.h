// Deterministic virtual-time coordination for thread-ranks.
//
// Rank programs (checkpoint writers, metadata clients) are ordinary
// synchronous C++ running on std::thread. Every simulated I/O goes through
// VirtualScheduler::atomically(), which admits exactly one thread at a
// time: the one whose (virtual time, actor id) pair is the lexicographic
// minimum over all active actors. Inside the admitted section the actor
// reserves time on shared SimResources (disks, servers, locks) and moves
// its own clock to the operation's completion time.
//
// Because admissions are totally ordered by (time, id) and all shared
// state is touched only inside admitted sections, the simulation is an
// exact, reproducible conservative discrete-event execution: re-running
// with the same seeds produces byte-identical results regardless of OS
// thread scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

namespace pdsi::sim {

class VirtualScheduler {
 public:
  /// Creates a scheduler for actors 0..n-1, all active at time 0.
  explicit VirtualScheduler(std::size_t num_actors);

  std::size_t num_actors() const { return times_.size(); }

  /// The actor's current virtual time. Only the actor itself may assume
  /// this is exact; other threads get a snapshot.
  double now(std::size_t actor) const;

  /// Minimum virtual time over active actors (reporting only).
  double global_now() const;

  /// Blocks until `actor` is the (time, id)-minimum, then runs `fn(now)`
  /// under the scheduler lock. `fn` returns the actor's new absolute time,
  /// which must be >= now. Shared simulation state (resources, lock
  /// tables) must only be touched inside such sections.
  void atomically(std::size_t actor, const std::function<double(double)>& fn);

  /// Convenience: advance the actor's clock by dt (>= 0).
  void advance(std::size_t actor, double dt);

  /// Marks the actor finished; it no longer gates other actors.
  /// Idempotent.
  void finish(std::size_t actor);

  /// True once every actor has finished.
  bool all_finished() const;

 private:
  friend class VirtualBarrier;

  bool is_min_locked(std::size_t actor) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<double> times_;
  std::vector<bool> active_;
  std::size_t active_count_;
};

/// Synchronises a fixed set of participants: every arriver blocks until
/// all have arrived, then all resume with their clocks set to the maximum
/// arrival time (the barrier's completion instant). Participants are
/// removed from the scheduler's min-calculation while parked so
/// non-participants can keep making progress.
class VirtualBarrier {
 public:
  VirtualBarrier(VirtualScheduler& sched, std::vector<std::size_t> participants);

  /// Blocks until all participants arrive. Returns the synchronised time.
  double arrive(std::size_t actor);

 private:
  VirtualScheduler& sched_;
  std::vector<std::size_t> participants_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  double max_time_ = 0.0;
};

/// A FIFO single-server resource (disk head, NIC, server CPU). Reserve
/// only inside VirtualScheduler::atomically sections; admission order
/// guarantees reservations arrive in nondecreasing virtual time, which
/// makes the one-word clock an exact FIFO queue model.
class SimResource {
 public:
  /// Reserves `service` seconds starting no earlier than `now`; returns
  /// the completion time.
  double reserve(double now, double service) {
    const double start = now > free_ ? now : free_;
    free_ = start + service;
    busy_ += service;
    return free_;
  }

  /// Next instant the resource is idle.
  double free_at() const { return free_; }

  /// Total busy seconds accumulated (for utilisation reporting).
  double busy_seconds() const { return busy_; }

 private:
  double free_ = 0.0;
  double busy_ = 0.0;
};

inline constexpr double kTimeInfinity = std::numeric_limits<double>::infinity();

}  // namespace pdsi::sim
