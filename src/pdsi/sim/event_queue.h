// Classic single-threaded discrete-event queue for the packet-level and
// disk-scheduler simulations (incast, Argon) which need timer semantics —
// retransmission timeouts, time-slice expiries — that the virtual-time
// resource-clock model cannot express.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace pdsi::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  double now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  /// Schedules `cb` at absolute time `t` (>= now). Events at equal times
  /// fire in scheduling order. Returns an id usable with cancel().
  EventId at(double t, Callback cb);

  /// Schedules `cb` `dt` seconds from now.
  EventId after(double dt, Callback cb) { return at(now_ + dt, std::move(cb)); }

  /// Cancels a pending event; returns false if it already fired or was
  /// already cancelled. Cancellation is O(1) (tombstoned).
  bool cancel(EventId id);

  /// Fires the next event; returns false if none pending.
  bool step();

  /// Runs events until the queue empties or time would exceed `t`;
  /// afterwards now() == min(t, last event time... ) — precisely, now()
  /// is advanced to t if the queue drained earlier.
  void run_until(double t);

  /// Runs to completion. `max_events` guards against runaway simulations.
  void run(std::uint64_t max_events = ~0ULL);

 private:
  struct Entry {
    double time;
    EventId id;
    bool operator>(const Entry& o) const {
      return time > o.time || (time == o.time && id > o.id);
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace pdsi::sim
