#include "pdsi/sim/event_queue.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace pdsi::sim {

EventQueue::EventId EventQueue::at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("event scheduled in the past");
  const EventId id = next_id_++;
  heap_.push({t, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // tombstoned by cancel()
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --live_count_;
    assert(top.time >= now_);
    now_ = top.time;
    cb();
    return true;
  }
  return false;
}

void EventQueue::run_until(double t) {
  while (!heap_.empty()) {
    // Peek past tombstones without firing.
    const Entry top = heap_.top();
    if (!callbacks_.count(top.id)) {
      heap_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && step()) ++fired;
  if (fired == max_events) {
    throw std::runtime_error("EventQueue::run exceeded max_events (runaway sim?)");
  }
}

}  // namespace pdsi::sim
