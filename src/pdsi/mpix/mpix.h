// mpix — a miniature MPI-flavoured rank runtime over threads.
//
// PLFS's deployment surface is MPI-IO; examples in this repository are
// written as rank programs against this runtime so they read like the
// MPI codes they stand in for. Collectives cover what checkpoint codes
// use: barrier, broadcast, reduce/allreduce, and gather.
//
// This is the *wall-clock* runtime for examples over real backends; the
// simulated experiments use sim::VirtualScheduler directly.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

namespace pdsi::mpix {

class World;

/// Per-rank handle (the "MPI_COMM_WORLD" of a rank).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocks until every rank arrives.
  void barrier();

  /// Root's value is returned on every rank.
  double broadcast(double value, int root);

  /// Sum/min/max across ranks, result on every rank.
  double allreduce_sum(double value);
  double allreduce_min(double value);
  double allreduce_max(double value);

  /// Root receives everyone's value (indexed by rank); non-roots get {}.
  std::vector<double> gather(double value, int root);

  /// Constructed by RunWorld; not for direct use.
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

 private:
  World* world_;
  int rank_;
};

/// Spawns `ranks` threads running `body` and joins them.
void RunWorld(int ranks, const std::function<void(Comm&)>& body);

}  // namespace pdsi::mpix
