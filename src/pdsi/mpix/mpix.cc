#include "pdsi/mpix/mpix.h"

#include <algorithm>
#include <thread>

namespace pdsi::mpix {

/// Shared collective state. All collectives are phased on the generation
/// barrier: ranks deposit, the last arrival combines, everyone reads.
class World {
 public:
  explicit World(int ranks) : ranks_(ranks), slots_(ranks, 0.0) {}

  int size() const { return ranks_; }

  void barrier() {
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == ranks_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lk, [&] { return generation_ != my_generation; });
  }

  /// Deposit-combine-read collective: every rank stores `value`, the
  /// last arrival runs `combine` over the slots into `result_`, and all
  /// ranks return it.
  double collective(int rank, double value,
                    const std::function<double(const std::vector<double>&)>& combine) {
    std::unique_lock<std::mutex> lk(mu_);
    slots_[rank] = value;
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == ranks_) {
      result_ = combine(slots_);
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return result_;
    }
    cv_.wait(lk, [&] { return generation_ != my_generation; });
    return result_;
  }

  std::vector<double> gather(int rank, double value, int root) {
    std::unique_lock<std::mutex> lk(mu_);
    slots_[rank] = value;
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == ranks_) {
      gathered_ = slots_;
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return generation_ != my_generation; });
    }
    return rank == root ? gathered_ : std::vector<double>{};
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int ranks_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<double> slots_;
  double result_ = 0.0;
  std::vector<double> gathered_;
};

int Comm::size() const { return world_->size(); }
void Comm::barrier() { world_->barrier(); }

double Comm::broadcast(double value, int root) {
  return world_->collective(rank_, value,
                            [root](const std::vector<double>& v) { return v[root]; });
}

double Comm::allreduce_sum(double value) {
  return world_->collective(rank_, value, [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s;
  });
}

double Comm::allreduce_min(double value) {
  return world_->collective(rank_, value, [](const std::vector<double>& v) {
    return *std::min_element(v.begin(), v.end());
  });
}

double Comm::allreduce_max(double value) {
  return world_->collective(rank_, value, [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end());
  });
}

std::vector<double> Comm::gather(double value, int root) {
  return world_->gather(rank_, value, root);
}

void RunWorld(int ranks, const std::function<void(Comm&)>& body) {
  World world(ranks);
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&world, &body, r] {
      Comm comm(world, r);
      body(comm);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace pdsi::mpix
