// pdsi::rpc — a virtual-time client request engine with per-server
// queues, batched wire messages and a bounded in-flight window.
//
// The PDSI report's incast and metadata-storm sections (and the wider
// parallel-FS literature: zgsk's mainloop + packetqueue, vitastor's
// readdir_getattr_parallel / id_alloc_batch_size knobs) all hinge on the
// same observation: a client that issues one synchronous RPC at a time is
// latency-bound, while a client that keeps a bounded window of requests
// in flight and coalesces small requests into batched wire messages is
// resource-bound. This engine models exactly that distinction for the
// simulated pfs substrate:
//
//   * execute() is the single retry/timeout/backoff seam. Every
//     client->server RPC — synchronous or pipelined — goes through it, so
//     the fault injector plugs in at one place and the exponential
//     backoff schedule (RetryPolicy) can no longer fork per call site.
//   * submit() (pipelined mode) appends the request to its server's
//     queue. A queue flushes as one wire message once `batch` requests
//     have coalesced: the head request pays the wire latency, the tail
//     requests ride the same message for free. Completions accumulate in
//     the in-flight window; the client's clock only advances when the
//     window saturates (it must wait for the earliest completion) — the
//     bounded-window backpressure that separates pipelining from an
//     unbounded burst.
//   * drain() is the synchronisation point (read barriers, fsync, close):
//     every queued request is flushed, every in-flight completion is
//     awaited, and any asynchronous failure since the last drain is
//     surfaced — pipelined writes fail at sync time, like real async I/O.
//
// Determinism: the engine holds plain per-client state mutated only
// inside VirtualScheduler::atomically sections, requests execute in
// queue-index/FIFO order, and all retry randomness goes through the
// fault injector's seeded per-server streams — pipelined runs replay
// byte-identically. With window == batch == 1 (the default) the engine
// never queues anything: execute() performs the identical call sequence
// the pre-engine client performed, so sync-mode timing is byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "pdsi/obs/obs.h"

namespace pdsi::fault {
class FaultInjector;
}  // namespace pdsi::fault

namespace pdsi::rpc {

/// The client-side recovery schedule: one timeout charge per failed
/// attempt plus an exponentially growing backoff. This is the single
/// definition of the penalty both the chunk path and the availability-
/// wait path used to compute independently.
struct RetryPolicy {
  double rpc_timeout_s = 5e-3;   ///< charged per failed attempt
  double retry_backoff_s = 1e-3; ///< doubles with each attempt
  std::uint32_t max_retries = 6; ///< attempts beyond the first

  /// Penalty charged after failed attempt number `attempt` (0-based).
  /// The shift saturates at 2^20 so the schedule stays finite for
  /// pathological retry budgets.
  double penalty(std::uint32_t attempt) const;
};

struct EngineConfig {
  std::uint32_t window = 1; ///< max in-flight requests (1 = synchronous)
  std::uint32_t batch = 1;  ///< requests coalesced per wire message per queue
  /// One-way wire latency the Serve callbacks charge when `charge_wire`
  /// is true. The engine never charges this itself — it only uses it to
  /// attribute the wire component in per-request monitor spans.
  double wire_latency_s = 0.0;
  bool pipelined() const { return window > 1 || batch > 1; }
};

/// Cumulative accounting (virtual-time, deterministic).
struct EngineStats {
  std::uint64_t submitted = 0;     ///< requests entering the engine
  std::uint64_t messages = 0;      ///< wire messages (batch heads) sent
  std::uint64_t batched_tails = 0; ///< requests that rode a message for free
  std::uint64_t window_stalls = 0; ///< submissions that waited for a slot
  std::uint64_t drains = 0;        ///< drain() synchronisation points
  std::uint64_t failures = 0;      ///< requests that exhausted their retries
  std::uint64_t max_inflight = 0;  ///< high-water mark of the window
  double stall_s = 0.0;            ///< virtual seconds spent window-stalled
};

class RequestEngine {
 public:
  /// The modelled service: perform the op arriving at `start` and return
  /// its completion time. `charge_wire` is false when the request rode a
  /// batched message whose head already paid the one-way RPC latency.
  using Serve = std::function<double(double start, bool charge_wire)>;

  /// Alternate service for reads whose owner is down (replica failover).
  /// Sets *served when a survivor answered; otherwise the engine keeps
  /// retrying the owner.
  using Failover = std::function<double(double at, bool* served)>;

  struct Request {
    std::uint32_t queue = 0;   ///< target server queue
    /// Data RPCs consume the injector's per-server drop stream; pure
    /// availability waits (fsync flush fan-out) do not — preserving the
    /// pre-engine draw sequence exactly.
    bool drop_eligible = true;
    /// Requests to servers outside the fault plan (the MDS queue — the
    /// injector's state is sized for the OSS population) bypass the
    /// injector entirely.
    bool fault_exempt = false;
    /// Causal request id minted by the client (0 = unattributed). Carried
    /// through submit/batch/execute/retry and stamped on the monitor's
    /// per-request rpc_req span.
    std::uint64_t req_id = 0;
    /// Client time at submit(); set by the engine. The rpc_req span
    /// starts here, so batch wait (submit -> flush) is attributable.
    double submit_t = 0.0;
    Serve serve;
    Failover failover;  ///< optional; consulted from the second attempt on
  };

  /// Per-execution attribution, filled by execute() for monitor spans.
  struct ExecInfo {
    double retry_s = 0.0;  ///< timeout + backoff penalties charged
    bool served_wire = false;  ///< serve() ran with charge_wire == true
  };

  RequestEngine() = default;
  RequestEngine(const RequestEngine&) = delete;
  RequestEngine& operator=(const RequestEngine&) = delete;

  /// `num_queues` server queues; `ctx`/`track` (optional) emit rpc.*
  /// counters and rpc_stall/rpc_drain spans on the owning client's track
  /// — only in pipelined mode, so default runs add no instruments.
  void configure(const EngineConfig& cfg, std::uint32_t num_queues,
                 obs::Context* ctx = nullptr, std::uint32_t track = 0);

  const EngineConfig& config() const { return cfg_; }
  bool pipelined() const { return cfg_.pipelined(); }
  const EngineStats& stats() const { return stats_; }

  /// The engine-owned retry seam: runs `req` starting at `t` under
  /// `inj`'s fault plan (nullptr = no faults, exactly one serve call).
  /// Returns the completion time; clears *ok once the retry budget is
  /// exhausted (the returned time then includes every backoff charged).
  /// `info` (optional) receives the retry/wire attribution.
  double execute(const Request& req, double t, fault::FaultInjector* inj,
                 bool charge_wire, bool* ok, ExecInfo* info = nullptr);

  /// Pipelined submission at client time `t`: enqueue, flush the queue as
  /// one wire message once `batch` requests coalesced, and stall only
  /// when the in-flight window is saturated. Returns the client's
  /// post-submission time (== t unless the window stalled). Asynchronous
  /// failures latch and surface at the next drain().
  double submit(Request req, double t, fault::FaultInjector* inj);

  /// Synchronisation barrier: flushes every queue (in queue-index order),
  /// awaits every in-flight completion, and reports (then clears) any
  /// asynchronous failure since the last drain. Returns the instant the
  /// last outstanding request completed.
  double drain(double t, fault::FaultInjector* inj, bool* ok);

  /// Requests currently in flight or queued (reporting/tests).
  std::size_t outstanding() const {
    std::size_t queued = 0;
    for (const auto& q : queues_) queued += q.size();
    return inflight_.size() + queued;
  }

 private:
  /// Executes every queued request of `queue` as one wire message.
  double flush_queue(std::uint32_t queue, double t, fault::FaultInjector* inj);
  /// Frees already-elapsed completions; when the window is still full,
  /// advances `t` to the earliest completion (a window stall).
  double take_slot(double t);
  void note_inflight(double completion);
  /// True when a tracer with live subscribers is attached — the gate for
  /// the per-request monitor spans (and the req args downstream), so
  /// unmonitored traces stay byte-identical.
  bool monitoring() const {
    return ctx_ != nullptr && ctx_->tracer != nullptr &&
           ctx_->tracer->has_subscribers();
  }
  /// Emits the rpc_req / rpc_req_fail span for one completed request:
  /// span [submit_t, done] on the client track with the queue / stall /
  /// retry / wire attribution args (service is the remainder).
  void emit_req_span(const Request& req, double submit_t, double pre_slot_t,
                     double exec_start_t, double done, const ExecInfo& info,
                     bool ok);

  EngineConfig cfg_;
  std::vector<std::vector<Request>> queues_;
  /// Min-heap of in-flight completion times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> inflight_;
  bool async_error_ = false;
  EngineStats stats_;

  obs::Context* ctx_ = nullptr;
  std::uint32_t track_ = 0;
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_messages_ = nullptr;
  obs::Counter* c_stalls_ = nullptr;
  obs::Counter* c_drains_ = nullptr;
};

}  // namespace pdsi::rpc
