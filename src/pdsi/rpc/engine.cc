#include "pdsi/rpc/engine.h"

#include <algorithm>

#include "pdsi/fault/fault.h"

namespace pdsi::rpc {

double RetryPolicy::penalty(std::uint32_t attempt) const {
  return rpc_timeout_s +
         retry_backoff_s * static_cast<double>(1u << std::min(attempt, 20u));
}

void RequestEngine::configure(const EngineConfig& cfg, std::uint32_t num_queues,
                              obs::Context* ctx, std::uint32_t track) {
  cfg_ = cfg;
  cfg_.window = std::max<std::uint32_t>(1, cfg_.window);
  cfg_.batch = std::max<std::uint32_t>(1, cfg_.batch);
  queues_.assign(num_queues, {});
  ctx_ = ctx;
  track_ = track;
  // Instruments exist only for pipelined clients, so default (sync) runs
  // keep their metric dumps byte-identical.
  if (ctx_ && ctx_->registry && cfg_.pipelined()) {
    auto& r = *ctx_->registry;
    c_submitted_ = &r.counter("rpc.submitted");
    c_messages_ = &r.counter("rpc.messages");
    c_stalls_ = &r.counter("rpc.window_stalls");
    c_drains_ = &r.counter("rpc.drains");
  }
}

double RequestEngine::execute(const Request& req, double t,
                              fault::FaultInjector* inj, bool charge_wire,
                              bool* ok, ExecInfo* info) {
  *ok = true;
  if (!inj || req.fault_exempt) {
    if (info) info->served_wire = charge_wire;
    return req.serve(t, charge_wire);
  }
  const fault::FaultPlan& plan = inj->plan();
  const RetryPolicy policy{plan.rpc_timeout_s, plan.retry_backoff_s,
                           plan.max_retries};
  double at = t;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const bool is_down = inj->down(req.queue, at);
    if (!is_down && !(req.drop_eligible && inj->drop_rpc(req.queue))) {
      if (info) info->served_wire = charge_wire;
      return req.serve(at, charge_wire);
    }
    if (!is_down) inj->note_drop(req.queue, at);
    // Failover kicks in from the second attempt: the crash is detected by
    // the first timeout, never predicted.
    if (is_down && req.failover && plan.read_failover && attempt > 0) {
      bool served = false;
      const double done = req.failover(at, &served);
      // A survivor's answer is service time, not wire: the failover
      // callback owns its own latency accounting.
      if (served) return done;
    }
    if (attempt >= plan.max_retries) break;
    const double penalty = policy.penalty(attempt);
    inj->note_retry(req.queue, at, at + penalty);
    at += penalty;
    if (info) info->retry_s += penalty;
  }
  *ok = false;
  stats_.failures++;
  return at;
}

void RequestEngine::emit_req_span(const Request& req, double submit_t,
                                  double pre_slot_t, double exec_start_t,
                                  double done, const ExecInfo& info, bool ok) {
  // queue covers submit -> wire flush (batch wait plus any predecessor's
  // retries within the same message); stall is this request's own window
  // wait; service is whatever end-to-end time the other classes leave —
  // the identity total == queue + stall + retry + wire + service is exact
  // by construction.
  const double wire_s = info.served_wire ? cfg_.wire_latency_s : 0.0;
  ctx_->tracer->complete(track_, ok ? "rpc_req" : "rpc_req_fail", "rpc",
                         submit_t, done,
                         {obs::Arg::Int("req", req.req_id),
                          obs::Arg::Int("srv", req.queue),
                          obs::Arg::Num("queue_s", pre_slot_t - submit_t),
                          obs::Arg::Num("stall_s", exec_start_t - pre_slot_t),
                          obs::Arg::Num("retry_s", info.retry_s),
                          obs::Arg::Num("wire_s", wire_s)});
}

void RequestEngine::note_inflight(double completion) {
  inflight_.push(completion);
  stats_.max_inflight =
      std::max<std::uint64_t>(stats_.max_inflight, inflight_.size());
}

double RequestEngine::take_slot(double t) {
  // Completions that already elapsed free their slots without advancing
  // the clock; a still-full window stalls the client until the earliest
  // outstanding request lands.
  while (!inflight_.empty() && inflight_.top() <= t) inflight_.pop();
  if (inflight_.size() < cfg_.window) return t;
  const double resume = inflight_.top();
  inflight_.pop();
  stats_.window_stalls++;
  stats_.stall_s += resume - t;
  if (c_stalls_) c_stalls_->add(1);
  if (ctx_ && ctx_->tracer) {
    ctx_->tracer->complete(track_, "rpc_stall", "rpc", t, resume);
  }
  while (!inflight_.empty() && inflight_.top() <= resume) inflight_.pop();
  return resume;
}

double RequestEngine::flush_queue(std::uint32_t queue, double t,
                                  fault::FaultInjector* inj) {
  auto pending = std::move(queues_[queue]);
  queues_[queue].clear();
  if (pending.empty()) return t;
  stats_.messages++;
  stats_.batched_tails += pending.size() - 1;
  if (c_messages_) c_messages_->add(1);
  const bool mon = monitoring();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const double pre_slot_t = t;
    t = take_slot(t);
    bool ok = true;
    ExecInfo info;
    // The message head pays the one-way wire latency; coalesced tails
    // enter the server pipeline with it already charged.
    const double done = execute(pending[i], t, inj, /*charge_wire=*/i == 0, &ok,
                                mon ? &info : nullptr);
    if (!ok) async_error_ = true;
    if (mon) {
      emit_req_span(pending[i], pending[i].submit_t, pre_slot_t, t, done, info,
                    ok);
    }
    // Failed requests still occupy their slot until the backoff schedule
    // ran out — the time spent retrying is real and drain() awaits it.
    note_inflight(done);
  }
  return t;
}

double RequestEngine::submit(Request req, double t, fault::FaultInjector* inj) {
  stats_.submitted++;
  if (c_submitted_) c_submitted_->add(1);
  req.submit_t = t;
  if (!cfg_.pipelined()) {
    // Synchronous mode: the engine is a pass-through retry seam — the
    // call sequence (and therefore the timing) is exactly the pre-engine
    // client's.
    bool ok = true;
    const bool mon = monitoring();
    ExecInfo info;
    const double done =
        execute(req, t, inj, /*charge_wire=*/true, &ok, mon ? &info : nullptr);
    if (!ok) async_error_ = true;
    if (mon) emit_req_span(req, t, t, t, done, info, ok);
    return done;
  }
  const std::uint32_t queue = req.queue;
  queues_[queue].push_back(std::move(req));
  if (queues_[queue].size() >= cfg_.batch) return flush_queue(queue, t, inj);
  return t;
}

double RequestEngine::drain(double t, fault::FaultInjector* inj, bool* ok) {
  const double start = t;
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    if (!queues_[q].empty()) t = flush_queue(q, t, inj);
  }
  while (!inflight_.empty()) {
    t = std::max(t, inflight_.top());
    inflight_.pop();
  }
  *ok = !async_error_;
  async_error_ = false;
  if (cfg_.pipelined()) {
    stats_.drains++;
    if (c_drains_) c_drains_->add(1);
    if (ctx_ && ctx_->tracer && t > start) {
      ctx_->tracer->complete(track_, "rpc_drain", "rpc", start, t);
    }
  }
  return t;
}

}  // namespace pdsi::rpc
