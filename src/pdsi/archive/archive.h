// Tape archive media verification (§5.2.3, NERSC).
//
// NERSC read 23,820 enterprise cartridges end-to-end while migrating
// 5+ PB: 13 tapes had unreadable data (99.945% full-read probability),
// and the worst tapes needed 3-5 read passes before their data came
// back. The model: each cartridge has per-GB soft-error rates that grow
// with media age; a verification appliance reads each tape once (like
// the Crossroads appliance), flagging suspects; the migration process
// retries suspect tapes several times, recovering data whose errors are
// transient. Permanently bad spots defeat all passes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/common/rng.h"

namespace pdsi::archive {

struct MediaClass {
  std::string name;
  std::uint32_t count = 1000;
  double capacity_gb = 300.0;
  double age_years = 2.0;
  /// Per-GB probability of a *transient* read error on one pass (dirty
  /// head, tracking, servo), growing with age.
  double soft_error_per_gb = 2e-5;
  /// Per-tape probability of a *permanent* defect (unrecoverable data).
  double permanent_defect_per_tape = 4e-4;
  double ageing_per_year = 1.25;
};

struct Cartridge {
  std::uint32_t media_class = 0;
  bool permanently_bad = false;   ///< some region unrecoverable
  double pass_failure_p = 0.0;    ///< chance one full-read pass hiccups
};

struct VerificationPolicy {
  std::uint32_t appliance_passes = 1;   ///< the appliance reads once
  std::uint32_t migration_retries = 5;  ///< max rereads for suspects
};

struct VerificationResult {
  std::uint64_t tapes = 0;
  std::uint64_t appliance_suspects = 0;   ///< failed the single-pass check
  std::uint64_t recovered_with_retries = 0;
  std::uint64_t unreadable = 0;           ///< data lost after all passes
  std::vector<std::uint32_t> passes_needed;  ///< per recovered-suspect
  double full_read_probability() const {
    return tapes ? 1.0 - static_cast<double>(unreadable) / tapes : 1.0;
  }
};

/// Builds the cartridge population from media classes.
std::vector<Cartridge> BuildLibrary(const std::vector<MediaClass>& classes, Rng& rng);

/// Runs the verification + migration campaign.
VerificationResult RunVerification(const std::vector<Cartridge>& library,
                                   const std::vector<MediaClass>& classes,
                                   const VerificationPolicy& policy, Rng& rng);

/// The NERSC media mix (scaled counts preserve the class proportions:
/// 6,859 T10KA up to 2 yrs; 9,155 9940B up to 8 yrs; 7,806 9840A up to
/// 12 yrs).
std::vector<MediaClass> NerscMediaMix();

}  // namespace pdsi::archive
