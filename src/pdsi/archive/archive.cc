#include "pdsi/archive/archive.h"

#include <cmath>

namespace pdsi::archive {

std::vector<Cartridge> BuildLibrary(const std::vector<MediaClass>& classes,
                                    Rng& rng) {
  std::vector<Cartridge> lib;
  for (std::uint32_t c = 0; c < classes.size(); ++c) {
    const MediaClass& mc = classes[c];
    const double ageing = std::pow(mc.ageing_per_year, mc.age_years);
    for (std::uint32_t i = 0; i < mc.count; ++i) {
      Cartridge tape;
      tape.media_class = c;
      tape.permanently_bad =
          rng.chance(mc.permanent_defect_per_tape * ageing);
      // Probability that a full-capacity read pass sees >= 1 soft error.
      // Per-tape condition spread is heavy-tailed: a few tapes are in
      // far worse shape than the fleet (these are the 3-5-pass tapes).
      const double condition = rng.lognormal(0.0, 1.2);
      const double lambda =
          mc.soft_error_per_gb * mc.capacity_gb * ageing * condition;
      tape.pass_failure_p = 1.0 - std::exp(-lambda);
      lib.push_back(tape);
    }
  }
  return lib;
}

VerificationResult RunVerification(const std::vector<Cartridge>& library,
                                   const std::vector<MediaClass>& classes,
                                   const VerificationPolicy& policy, Rng& rng) {
  (void)classes;
  VerificationResult r;
  r.tapes = library.size();
  for (const Cartridge& tape : library) {
    // Appliance check: a single end-to-end read.
    bool appliance_ok = !tape.permanently_bad;
    for (std::uint32_t p = 0; appliance_ok && p < policy.appliance_passes; ++p) {
      if (rng.chance(tape.pass_failure_p)) appliance_ok = false;
    }
    if (appliance_ok) continue;
    ++r.appliance_suspects;

    // Migration retries the suspect tape; transient hiccups eventually
    // pass, permanent defects never do.
    bool recovered = false;
    for (std::uint32_t attempt = 1;
         !recovered && attempt <= policy.migration_retries; ++attempt) {
      if (tape.permanently_bad) break;
      if (!rng.chance(tape.pass_failure_p)) {
        recovered = true;
        ++r.recovered_with_retries;
        r.passes_needed.push_back(attempt + policy.appliance_passes);
      }
    }
    if (!recovered) ++r.unreadable;
  }
  return r;
}

std::vector<MediaClass> NerscMediaMix() {
  std::vector<MediaClass> mix;
  {
    MediaClass m;
    m.name = "Oracle T10KA";
    m.count = 6859;
    m.capacity_gb = 500.0;
    m.age_years = 2.0;
    m.soft_error_per_gb = 6e-6;
    m.permanent_defect_per_tape = 0.5e-4;
    mix.push_back(m);
  }
  {
    MediaClass m;
    m.name = "Oracle 9940B";
    m.count = 9155;
    m.capacity_gb = 200.0;
    m.age_years = 8.0;
    m.soft_error_per_gb = 1.2e-5;
    m.permanent_defect_per_tape = 0.8e-4;
    mix.push_back(m);
  }
  {
    MediaClass m;
    m.name = "Oracle 9840A";
    m.count = 7806;
    m.capacity_gb = 20.0;
    m.age_years = 12.0;
    m.soft_error_per_gb = 8e-5;
    m.permanent_defect_per_tape = 0.8e-4;
    mix.push_back(m);
  }
  return mix;
}

}  // namespace pdsi::archive
