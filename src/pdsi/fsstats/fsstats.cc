#include "pdsi/fsstats/fsstats.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>

namespace pdsi::fsstats {

std::uint64_t Survey::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& f : files) total += f.size;
  return total;
}

std::vector<CdfPoint> Survey::size_cdf() const {
  std::vector<double> sizes;
  sizes.reserve(files.size());
  for (const auto& f : files) sizes.push_back(static_cast<double>(f.size));
  return EmpiricalCdf(std::move(sizes));
}

std::vector<CdfPoint> Survey::bytes_by_size_cdf() const {
  std::vector<FileRecord> sorted = files;
  std::sort(sorted.begin(), sorted.end(),
            [](const FileRecord& a, const FileRecord& b) { return a.size < b.size; });
  std::vector<CdfPoint> cdf;
  const double total = static_cast<double>(total_bytes());
  if (total == 0) return cdf;
  double cum = 0;
  for (const auto& f : sorted) {
    cum += static_cast<double>(f.size);
    if (!cdf.empty() && cdf.back().value == static_cast<double>(f.size)) {
      cdf.back().fraction = cum / total;
    } else {
      cdf.push_back({static_cast<double>(f.size), cum / total});
    }
  }
  return cdf;
}

std::vector<CdfPoint> Survey::dir_size_cdf() const {
  std::unordered_map<std::uint32_t, double> counts;
  for (const auto& f : files) counts[f.directory] += 1.0;
  std::vector<double> sizes;
  sizes.reserve(counts.size());
  for (const auto& [dir, n] : counts) sizes.push_back(n);
  return EmpiricalCdf(std::move(sizes));
}

double Survey::fraction_below(std::uint64_t size) const {
  if (files.empty()) return 0.0;
  std::size_t below = 0;
  for (const auto& f : files) below += f.size <= size;
  return static_cast<double>(below) / static_cast<double>(files.size());
}

Survey GeneratePopulation(const PopulationParams& params, Rng& rng) {
  Survey s;
  s.name = params.name;
  s.files.reserve(params.file_count);
  std::uint32_t dir = 0;
  double dir_quota = rng.exponential(params.mean_dir_files);
  double dir_fill = 0.0;
  for (std::size_t i = 0; i < params.file_count; ++i) {
    FileRecord f;
    if (rng.chance(params.tail_fraction)) {
      f.size = static_cast<std::uint64_t>(rng.pareto(params.tail_min, params.tail_alpha));
    } else {
      f.size = static_cast<std::uint64_t>(
          rng.lognormal(params.lognormal_mu, params.lognormal_sigma));
    }
    if (dir_fill >= dir_quota) {
      ++dir;
      dir_quota = rng.exponential(params.mean_dir_files);
      dir_fill = 0.0;
    }
    f.directory = dir;
    dir_fill += 1.0;
    f.name_length = static_cast<std::uint16_t>(4 + rng.below(28));
    s.files.push_back(f);
  }
  return s;
}

std::vector<PopulationParams> Fig3Populations() {
  std::vector<PopulationParams> out;
  struct Shape {
    const char* name;
    double median_kib;
    double sigma;
    double tail_fraction;
  };
  // Eleven sites: scratch systems skew large, home/project skew small —
  // the Fig. 3 spread covers medians from a few KiB to ~1 MiB.
  const Shape shapes[] = {
      {"lanl-scratch1", 512, 2.4, 0.04}, {"lanl-scratch2", 1024, 2.2, 0.05},
      {"lanl-project", 96, 2.0, 0.02},   {"nersc-scratch", 384, 2.5, 0.04},
      {"nersc-home", 6, 1.8, 0.002},     {"pnnl-nwfs", 128, 2.3, 0.02},
      {"pnnl-home", 8, 1.9, 0.004},      {"sandia-scratch", 640, 2.4, 0.05},
      {"psc-scratch", 256, 2.3, 0.03},   {"cmu-pdl", 24, 2.0, 0.01},
      {"anon-corp", 48, 2.1, 0.015},
  };
  for (const auto& sh : shapes) {
    PopulationParams p;
    p.name = sh.name;
    p.file_count = 60000;
    p.lognormal_mu = std::log(sh.median_kib * 1024.0);
    p.lognormal_sigma = sh.sigma;
    p.tail_fraction = sh.tail_fraction;
    out.push_back(p);
  }
  return out;
}

Survey SurveyDirectory(const std::string& root) {
  namespace fs = std::filesystem;
  Survey s;
  s.name = root;
  std::unordered_map<std::string, std::uint32_t> dirs;
  for (const auto& entry : fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied)) {
    std::error_code ec;
    if (!entry.is_regular_file(ec) || ec) continue;
    FileRecord f;
    f.size = entry.file_size(ec);
    if (ec) continue;
    const std::string parent = entry.path().parent_path().string();
    auto [it, fresh] = dirs.emplace(parent, static_cast<std::uint32_t>(dirs.size()));
    f.directory = it->second;
    f.name_length = static_cast<std::uint16_t>(entry.path().filename().string().size());
    s.files.push_back(f);
  }
  return s;
}

}  // namespace pdsi::fsstats
