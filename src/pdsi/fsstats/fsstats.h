// fsstats — file-system-at-rest survey (§3.2.2, Fig. 3; Dayal,
// CMU-PDL-08-109). The CMU/Panasas fsstats tool walked production file
// systems and published static statistics: counts and CDFs of file size,
// directory size, filename length, etc. This module provides
//  * the survey itself (over synthetic populations or a real directory),
//  * population models calibrated to the published HEC survey shapes
//    (lognormal body with a heavy power-law tail; most files small, most
//    bytes in few huge files), and
//  * CDF emission matching the Fig. 3 presentation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"

namespace pdsi::fsstats {

struct FileRecord {
  std::uint64_t size = 0;
  std::uint32_t directory = 0;
  std::uint16_t name_length = 0;
};

/// One surveyed file system.
struct Survey {
  std::string name;
  std::vector<FileRecord> files;

  std::uint64_t total_bytes() const;
  std::size_t file_count() const { return files.size(); }

  /// CDF over file count by size.
  std::vector<CdfPoint> size_cdf() const;
  /// CDF over *bytes* by file size (where the capacity lives).
  std::vector<CdfPoint> bytes_by_size_cdf() const;
  /// CDF of files per directory.
  std::vector<CdfPoint> dir_size_cdf() const;

  /// Fraction of files at or below `size` bytes.
  double fraction_below(std::uint64_t size) const;
};

/// Parameters of the synthetic population: mixture of a lognormal body
/// and a Pareto tail, matching the published finding that the median HEC
/// file is tens of KB while most bytes sit in GB-scale files.
struct PopulationParams {
  std::string name = "hec-fs";
  std::size_t file_count = 100000;
  double lognormal_mu = std::log(32.0 * 1024);  ///< median ~32 KiB
  double lognormal_sigma = 2.2;
  double tail_fraction = 0.02;    ///< fraction of files drawn from the tail
  double tail_min = 64.0 * 1024 * 1024;
  double tail_alpha = 1.1;
  double mean_dir_files = 64.0;   ///< geometric directory occupancy
};

Survey GeneratePopulation(const PopulationParams& params, Rng& rng);

/// The eleven non-archival production file systems of Fig. 3, with
/// per-site variations (scratch vs project vs home shapes).
std::vector<PopulationParams> Fig3Populations();

/// Surveys a real directory tree (the actual fsstats use case).
Survey SurveyDirectory(const std::string& root);

}  // namespace pdsi::fsstats
