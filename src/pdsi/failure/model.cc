#include "pdsi/failure/model.h"

#include <algorithm>
#include <cmath>

#include "pdsi/common/units.h"

namespace pdsi::failure {

double MttiModel::system_pflops(double year) const {
  return p_.base_system_pflops *
         std::pow(p_.system_growth_per_year, year - p_.base_year);
}

double MttiModel::chip_gflops(double year) const {
  const double doublings = (year - p_.base_year) * 12.0 / p_.chip_doubling_months;
  return p_.base_chip_gflops * std::pow(2.0, doublings);
}

double MttiModel::chips(double year) const {
  return system_pflops(year) * 1e6 / chip_gflops(year);  // PF -> GF
}

double MttiModel::interrupt_rate(double year) const {
  return p_.interrupts_per_chip_year * chips(year) / kYear;
}

double MttiModel::mtti_seconds(double year) const {
  return 1.0 / interrupt_rate(year);
}

double YoungOptimalInterval(double delta, double mtti) {
  return std::sqrt(2.0 * delta * mtti);
}

double EffectiveUtilization(double interval, double delta, double mtti,
                            double restart) {
  // Daly's exact renewal-reward result for Poisson failures at rate
  // lambda = 1/MTTI: the expected wall time to commit one segment of
  // `interval` useful seconds (plus its checkpoint) is
  //   E = e^{lambda*restart} * (e^{lambda*(interval+delta)} - 1) / lambda,
  // so utilisation = interval / E. Reduces to the familiar first-order
  // 1 - delta/tau - tau/(2*MTTI) expansion when lambda is small.
  const double lambda = 1.0 / mtti;
  const double expo = lambda * (interval + delta);
  // Guard against overflow for hopeless regimes (tiny MTTI).
  if (expo > 500.0 || lambda * restart > 500.0) return 0.0;
  const double expected =
      std::exp(lambda * restart) * (std::exp(expo) - 1.0) / lambda;
  return interval / expected;
}

double OptimalUtilization(double delta, double mtti, double restart) {
  const double tau = YoungOptimalInterval(delta, mtti);
  return EffectiveUtilization(tau, delta, mtti, restart);
}

std::string_view StorageScenarioName(StorageScenario s) {
  switch (s) {
    case StorageScenario::balanced: return "balanced(bw +100%/yr)";
    case StorageScenario::disk_trend: return "disk-trend(bw +20%/yr)";
    case StorageScenario::compression: return "balanced+compression";
  }
  return "?";
}

UtilizationModel::UtilizationModel(UtilizationModelParams p)
    : p_(p), mtti_(p.mtti) {}

double UtilizationModel::checkpoint_seconds(double year, StorageScenario s) const {
  // Checkpoint volume scales with memory, i.e. with machine speed
  // (balanced memory). Bandwidth scales per scenario.
  const double years = year - p_.mtti.base_year;
  const double volume_growth = std::pow(p_.mtti.system_growth_per_year, years);
  double bw_growth = 1.0;
  double footprint = 1.0;
  switch (s) {
    case StorageScenario::balanced:
      bw_growth = std::pow(p_.mtti.system_growth_per_year, years);
      break;
    case StorageScenario::disk_trend:
      bw_growth = std::pow(p_.disk_bw_growth, years);
      break;
    case StorageScenario::compression:
      bw_growth = std::pow(p_.mtti.system_growth_per_year, years);
      footprint = std::pow(p_.compression_gain, -years);
      break;
  }
  return p_.base_checkpoint_seconds * volume_growth * footprint / bw_growth;
}

double UtilizationModel::utilization(double year, StorageScenario s) const {
  const double delta = checkpoint_seconds(year, s);
  const double mtti = mtti_.mtti_seconds(year);
  return OptimalUtilization(delta, mtti, p_.restart_multiplier * delta);
}

double UtilizationModel::year_crossing_below(double threshold, StorageScenario s,
                                             double limit_year) const {
  for (double y = p_.mtti.base_year; y <= limit_year; y += 0.25) {
    if (utilization(y, s) < threshold) return y;
  }
  return limit_year + 1.0;
}

double UtilizationModel::pairs_utilization(double year, StorageScenario s,
                                           double visualization_interval_s) const {
  // Half the machine computes usefully; the only storage overhead left is
  // the visualisation/steering checkpoint. Simultaneous-pair loss is rare
  // enough (quadratically so) to neglect at this fidelity.
  const double delta = checkpoint_seconds(year, s);
  return 0.5 * (visualization_interval_s /
                (visualization_interval_s + delta));
}

double UtilizationModel::year_pairs_win(StorageScenario s, double limit_year) const {
  for (double y = p_.mtti.base_year; y <= limit_year; y += 0.25) {
    if (utilization(y, s) < pairs_utilization(y, s)) return y;
  }
  return limit_year + 1.0;
}

}  // namespace pdsi::failure
