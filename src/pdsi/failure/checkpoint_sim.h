// Discrete-event validation of the checkpoint-overhead model: runs a
// long application against a failure process with a fixed checkpoint
// interval and measures achieved utilisation directly. Used by tests to
// confirm the analytic EffectiveUtilization() formula and by the Fig. 5
// bench as an independent cross-check of the projection.
#pragma once

#include <cstdint>
#include <vector>

#include "pdsi/common/rng.h"

namespace pdsi::obs {
struct Context;
}

namespace pdsi::failure {

struct CheckpointSimParams {
  double work_seconds = 30.0 * 24 * 3600;  ///< useful compute to finish
  double interval = 3600.0;                ///< compute time between checkpoints
  double checkpoint_seconds = 300.0;       ///< time to write a checkpoint
  double restart_seconds = 600.0;          ///< reboot + read last checkpoint
  double mtti_seconds = 24.0 * 3600;       ///< failure process mean
  double weibull_shape = 1.0;              ///< 1.0 = Poisson failures

  // -- Burst-buffer staging (pdsi::bb). When either field is positive the
  // checkpoint cost splits in two: the application blocks only for the
  // absorb into the burst buffer, then resumes compute while the buffer
  // drains to the parallel file system in the background. The drain
  // channel is serial with a single staging slot, so absorb k stalls until
  // drain k-1 has finished (the backpressure regime once drain bandwidth
  // is the bottleneck). A checkpoint is durable only when its drain
  // completes: a failure that strikes mid-drain loses that checkpoint and
  // rolls back to the previous durable one. With both fields zero the
  // classic direct-to-PFS model below is used unchanged.
  double bb_absorb_seconds = 0.0;  ///< blocking absorb into the burst buffer
  double bb_drain_seconds = 0.0;   ///< background drain to the PFS

  /// Optional injected interrupt schedule (virtual seconds, ascending;
  /// must outlive the call). When set, failures strike at exactly these
  /// instants instead of the analytic Weibull process — the hook
  /// pdsi::fault uses to couple lost work to actually-injected faults
  /// (FaultInjector::interrupt_times()). Instants landing during a
  /// restart are absorbed by it (the machine is already down), matching
  /// how the analytic process skips draws inside restarts. With nullptr
  /// the analytic model runs unchanged, draw-for-draw.
  const std::vector<double>* interrupts = nullptr;

  /// Optional tracing/metrics sink (must outlive the call): phase spans
  /// (compute/checkpoint/absorb/stall/restart, drains on their own track)
  /// and failure instants land on obs::kCheckpointTrack /
  /// obs::kCheckpointDrainTrack.
  obs::Context* obs = nullptr;
};

struct CheckpointSimResult {
  double wall_seconds = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t checkpoints = 0;
  double utilization = 0.0;  ///< work_seconds / wall_seconds
  // Burst-buffer mode only:
  std::uint64_t lost_drains = 0;  ///< failures that caught a checkpoint mid-drain
  double stall_seconds = 0.0;     ///< absorb time spent waiting on the drain channel
};

/// Simulates until the work completes. Failures strike at Weibull times;
/// a failure mid-segment loses progress since the last *durable*
/// checkpoint and pays the restart cost. See CheckpointSimParams for the
/// burst-buffer staging mode.
CheckpointSimResult SimulateCheckpointing(const CheckpointSimParams& params, Rng& rng);

}  // namespace pdsi::failure
