// Discrete-event validation of the checkpoint-overhead model: runs a
// long application against a failure process with a fixed checkpoint
// interval and measures achieved utilisation directly. Used by tests to
// confirm the analytic EffectiveUtilization() formula and by the Fig. 5
// bench as an independent cross-check of the projection.
#pragma once

#include <cstdint>

#include "pdsi/common/rng.h"

namespace pdsi::failure {

struct CheckpointSimParams {
  double work_seconds = 30.0 * 24 * 3600;  ///< useful compute to finish
  double interval = 3600.0;                ///< compute time between checkpoints
  double checkpoint_seconds = 300.0;       ///< time to write a checkpoint
  double restart_seconds = 600.0;          ///< reboot + read last checkpoint
  double mtti_seconds = 24.0 * 3600;       ///< failure process mean
  double weibull_shape = 1.0;              ///< 1.0 = Poisson failures
};

struct CheckpointSimResult {
  double wall_seconds = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t checkpoints = 0;
  double utilization = 0.0;  ///< work_seconds / wall_seconds
};

/// Simulates until the work completes. Failures strike at Weibull times;
/// a failure mid-segment loses progress since the last checkpoint and
/// pays the restart cost.
CheckpointSimResult SimulateCheckpointing(const CheckpointSimParams& params, Rng& rng);

}  // namespace pdsi::failure
