// Failure and checkpoint-overhead models (§3.3.3, Figs. 4 & 5).
//
// The report's analysis chain:
//  1. LANL data: application interrupts are linear in the number of
//     processor chips, ~0.1 interrupts/chip/year (optimistic).
//  2. top500 growth: aggregate speed doubles yearly; per-chip speed
//     doubles every 18-30 months; so chip counts — and interrupt rates —
//     compound, and MTTI falls toward minutes by exascale.
//  3. Balanced-machine checkpointing: memory scales with speed, so the
//     checkpoint volume grows; sustainable storage bandwidth depends on
//     how many disks you can afford (per-disk bandwidth grows only
//     ~20%/year). Young/Daly-optimal checkpointing then yields effective
//     application utilisation, which crosses below 50% before 2014 unless
//     storage spending grows absurdly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdsi::failure {

struct MttiModelParams {
  double base_year = 2008.0;
  double base_system_pflops = 1.0;        ///< 1 PFLOP/s machine in 2008
  double system_growth_per_year = 2.0;    ///< top500 aggregate speed doubling
  double chip_doubling_months = 18.0;     ///< per-chip speed (Moore best case)
  double base_chip_gflops = 10.0;         ///< per-chip speed at base year
  double interrupts_per_chip_year = 0.1;  ///< optimistic LANL-derived rate
};

class MttiModel {
 public:
  explicit MttiModel(MttiModelParams p = {}) : p_(p) {}

  const MttiModelParams& params() const { return p_; }

  double system_pflops(double year) const;
  double chip_gflops(double year) const;
  double chips(double year) const;

  /// Interrupts per second for the machine of `year`.
  double interrupt_rate(double year) const;

  /// Mean time to interrupt, seconds.
  double mtti_seconds(double year) const;

 private:
  MttiModelParams p_;
};

/// Young/Daly checkpoint-interval optimisation.
/// delta: time to write one checkpoint; mtti: mean time to interrupt;
/// restart: time to restart after failure.
double YoungOptimalInterval(double delta, double mtti);

/// Effective utilisation (useful compute fraction) for an application
/// checkpointing every `interval` seconds: overhead = checkpoint time +
/// expected rework + restart, first-order model.
double EffectiveUtilization(double interval, double delta, double mtti,
                            double restart);

/// Utilisation at the Young-optimal interval.
double OptimalUtilization(double delta, double mtti, double restart);

/// Storage-bandwidth growth scenarios for Fig. 5.
enum class StorageScenario {
  balanced,       ///< bandwidth grows 100%/yr (disk count +67%/yr): cost blows up
  disk_trend,     ///< constant disk count: bandwidth grows only 20%/yr
  compression,    ///< balanced + checkpoint footprint shrinking 30%/yr
};

std::string_view StorageScenarioName(StorageScenario s);

struct UtilizationModelParams {
  MttiModelParams mtti;
  /// 2008 baseline time to write one checkpoint of the full machine
  /// (memory/storage-bandwidth ratio of a balanced petaflop system).
  double base_checkpoint_seconds = 60.0;
  double restart_multiplier = 2.0;          ///< restart reads + requeue
  double disk_bw_growth = 1.20;             ///< per-disk bandwidth per year
  double compression_gain = 1.30;           ///< footprint shrink per year
};

class UtilizationModel {
 public:
  explicit UtilizationModel(UtilizationModelParams p = {});

  /// Seconds to write one checkpoint in `year` under the scenario.
  double checkpoint_seconds(double year, StorageScenario s) const;

  /// Effective utilisation at the Young-optimal interval.
  double utilization(double year, StorageScenario s) const;

  /// First year (searched in 0.25-year steps from base) where utilisation
  /// falls below `threshold`, or a large sentinel if it never does before
  /// `limit_year`.
  double year_crossing_below(double threshold, StorageScenario s,
                             double limit_year = 2030.0) const;

  /// Process pairs (the report's alternative once utilisation heads under
  /// 50%): run two copies of the computation so a failure never loses
  /// state; checkpoints shrink to the visualisation cadence. Utilisation
  /// is capped at 50% of the machine but degrades only with the (rare)
  /// checkpoint-at-visualisation cost, not with MTTI.
  double pairs_utilization(double year, StorageScenario s,
                           double visualization_interval_s = 3600.0) const;

  /// First year checkpoint-restart drops below process pairs (the
  /// decision point the report describes).
  double year_pairs_win(StorageScenario s, double limit_year = 2030.0) const;

  const MttiModel& mtti() const { return mtti_; }

 private:
  UtilizationModelParams p_;
  MttiModel mtti_;
};

}  // namespace pdsi::failure
