#include "pdsi/failure/trace.h"

#include <algorithm>
#include <cmath>

#include "pdsi/common/units.h"

namespace pdsi::failure {

std::vector<FailureEvent> GenerateTrace(const SystemTraceParams& params, Rng& rng) {
  std::vector<FailureEvent> trace;
  const double total = params.years * kYear;
  const double base_rate_per_node =
      params.interrupts_per_chip_year * params.chips_per_node / kYear;

  for (std::uint32_t node = 0; node < params.nodes; ++node) {
    Rng node_rng = rng.fork();
    double t = 0.0;
    while (true) {
      // Weibull renewal process whose scale is adjusted so the *current*
      // ageing-scaled rate is honoured; ageing multiplies the hazard as
      // the system grows old (no infant-mortality bathtub).
      const double age_years = t / kYear;
      const double rate =
          base_rate_per_node * std::pow(params.ageing_per_year, age_years);
      // Weibull with mean 1/rate: scale = 1 / (rate * Gamma(1 + 1/shape)).
      const double gamma_term = std::tgamma(1.0 + 1.0 / params.tbf_weibull_shape);
      const double scale = 1.0 / (rate * gamma_term);
      t += node_rng.weibull(params.tbf_weibull_shape, scale);
      if (t >= total) break;
      FailureEvent e;
      e.time = t;
      e.node = node;
      const double u = node_rng.uniform();
      e.what = u < 0.55   ? FailureClass::hardware
               : u < 0.85 ? FailureClass::software
               : u < 0.93 ? FailureClass::network
               : u < 0.97 ? FailureClass::environment
                          : FailureClass::unknown;
      e.repair_seconds = node_rng.lognormal(params.repair_mu, params.repair_sigma);
      trace.push_back(e);

      // Correlated follow-ups (bounded chain).
      double ft = t;
      for (int chain = 0; chain < 4; ++chain) {
        if (!node_rng.chance(params.burst_probability)) break;
        ft += node_rng.exponential(params.burst_mean_gap);
        if (ft >= total) break;
        FailureEvent f = e;
        f.time = ft;
        f.repair_seconds =
            node_rng.lognormal(params.repair_mu, params.repair_sigma);
        trace.push_back(f);
      }
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.time < b.time; });
  return trace;
}

std::vector<double> AnnualRatePerNode(const std::vector<FailureEvent>& trace,
                                      const SystemTraceParams& params) {
  std::vector<double> rates(static_cast<std::size_t>(std::ceil(params.years)), 0.0);
  for (const auto& e : trace) {
    const std::size_t year = static_cast<std::size_t>(e.time / kYear);
    if (year < rates.size()) rates[year] += 1.0;
  }
  for (auto& r : rates) r /= params.nodes;
  return rates;
}

WeibullFit FitTimeBetweenFailures(const std::vector<FailureEvent>& trace) {
  std::vector<double> gaps;
  gaps.reserve(trace.size());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].time - trace[i - 1].time;
    if (dt > 0) gaps.push_back(dt);
  }
  return FitWeibull(gaps);
}

double ObservedMtti(const std::vector<FailureEvent>& trace, double total_seconds) {
  if (trace.empty()) return total_seconds;
  return total_seconds / static_cast<double>(trace.size());
}

}  // namespace pdsi::failure
