#include "pdsi/failure/checkpoint_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pdsi/obs/obs.h"

namespace pdsi::failure {
namespace {

// The failure process, behind one interface for both sources: analytic
// Weibull draws (the default) or an injected schedule of interrupt
// instants (p.interrupts). The analytic path reproduces the historical
// draw sequence exactly — same scale computation, same "accumulate while
// next <= t" advance — so existing seeded results are unchanged.
class FailureClock {
 public:
  FailureClock(const CheckpointSimParams& p, Rng& rng)
      : injected_(p.interrupts),
        rng_(rng),
        shape_(p.weibull_shape),
        scale_(p.mtti_seconds / std::tgamma(1.0 + 1.0 / p.weibull_shape)) {
    next_ = injected_ ? pop() : rng_.weibull(shape_, scale_);
  }

  /// The next failure instant (infinity once an injected schedule runs dry).
  double next() const { return next_; }

  /// Advances the process past `t`: instants at or before `t` struck a
  /// machine that was already down (mid-restart) and are absorbed.
  void advance_past(double t) {
    if (injected_) {
      while (next_ <= t) next_ = pop();
    } else {
      while (next_ <= t) next_ += rng_.weibull(shape_, scale_);
    }
  }

 private:
  double pop() {
    return idx_ < injected_->size()
               ? (*injected_)[idx_++]
               : std::numeric_limits<double>::infinity();
  }

  const std::vector<double>* injected_;
  std::size_t idx_ = 0;
  Rng& rng_;
  double shape_;
  double scale_;
  double next_;
};

obs::Tracer* PhaseTracer(const CheckpointSimParams& p) {
  obs::Tracer* t = p.obs ? p.obs->tracer : nullptr;
  if (t) {
    t->track(obs::kCheckpointTrack, "ckpt");
    t->track(obs::kCheckpointDrainTrack, "ckpt.drain");
  }
  return t;
}

// Burst-buffer staging mode: absorb blocks the application, the drain
// overlaps the next compute segment, and durability arrives only at drain
// completion. At most one checkpoint is ever in flight (single staging
// slot), so the next absorb stalls while the previous drain is running —
// that stall is the visible symptom of a drain-bandwidth bottleneck.
CheckpointSimResult SimulateWithBurstBuffer(const CheckpointSimParams& p, Rng& rng) {
  CheckpointSimResult r;
  obs::Tracer* tracer = PhaseTracer(p);
  FailureClock fail(p, rng);

  double done = 0.0;     // durable (drained) work
  double pending = 0.0;  // absorbed work whose drain has not completed
  double pending_durable_at = 0.0;
  double now = 0.0;

  while (done + pending < p.work_seconds || pending > 0.0) {
    // Commit an in-flight checkpoint whose drain has finished.
    if (pending > 0.0 && pending_durable_at <= now) {
      done += pending;
      pending = 0.0;
    }
    const double segment = std::min(p.interval, p.work_seconds - done - pending);
    if (segment <= 0.0) {
      // All work absorbed; just wait out the final drain (or a failure).
      if (fail.next() < pending_durable_at) {
        const double failed_at = fail.next();
        ++r.failures;
        ++r.lost_drains;
        pending = 0.0;
        if (tracer) {
          tracer->instant(obs::kCheckpointTrack, "failure", "ckpt", failed_at);
          tracer->instant(obs::kCheckpointDrainTrack, "lost_drain", "ckpt",
                          failed_at);
          tracer->complete(obs::kCheckpointTrack, "restart", "ckpt", failed_at,
                           failed_at + p.restart_seconds);
        }
        now = failed_at + p.restart_seconds;
        fail.advance_past(now);
        continue;
      }
      now = pending_durable_at;
      continue;
    }
    const double compute_end = now + segment;
    // Backpressure: the single staging slot frees when the previous drain
    // finishes; only then can the next absorb start.
    const double absorb_start =
        pending > 0.0 ? std::max(compute_end, pending_durable_at) : compute_end;
    const double absorb_end = absorb_start + p.bb_absorb_seconds;
    if (fail.next() < absorb_end) {
      const double failed_at = fail.next();
      ++r.failures;
      if (pending > 0.0) {
        if (failed_at < pending_durable_at) {
          ++r.lost_drains;  // died before the previous drain finished
          if (tracer) {
            tracer->instant(obs::kCheckpointDrainTrack, "lost_drain", "ckpt",
                            failed_at);
          }
        } else {
          done += pending;  // previous checkpoint made it to the PFS
        }
        pending = 0.0;
      }
      if (tracer) {
        tracer->instant(obs::kCheckpointTrack, "failure", "ckpt", failed_at);
        tracer->complete(obs::kCheckpointTrack, "restart", "ckpt", failed_at,
                         failed_at + p.restart_seconds);
      }
      now = failed_at + p.restart_seconds;
      fail.advance_past(now);
      continue;
    }
    r.stall_seconds += absorb_start - compute_end;
    if (pending > 0.0) {  // drained strictly before absorb_start
      done += pending;
      pending = 0.0;
    }
    ++r.checkpoints;
    if (tracer) {
      tracer->complete(obs::kCheckpointTrack, "compute", "ckpt", now, compute_end);
      if (absorb_start > compute_end) {
        tracer->complete(obs::kCheckpointTrack, "stall", "ckpt", compute_end,
                         absorb_start);
      }
      tracer->complete(obs::kCheckpointTrack, "absorb", "ckpt", absorb_start,
                       absorb_end);
      tracer->complete(obs::kCheckpointDrainTrack, "drain", "ckpt", absorb_end,
                       absorb_end + p.bb_drain_seconds);
    }
    now = absorb_end;
    pending = segment;
    pending_durable_at = absorb_end + p.bb_drain_seconds;
  }
  r.wall_seconds = now;
  r.utilization = p.work_seconds / now;
  return r;
}

}  // namespace

CheckpointSimResult SimulateCheckpointing(const CheckpointSimParams& p, Rng& rng) {
  if (p.bb_absorb_seconds > 0.0 || p.bb_drain_seconds > 0.0) {
    return SimulateWithBurstBuffer(p, rng);
  }
  CheckpointSimResult r;
  obs::Tracer* tracer = PhaseTracer(p);
  FailureClock fail(p, rng);

  double done = 0.0;        // committed (checkpointed) work
  double now = 0.0;

  while (done < p.work_seconds) {
    // Attempt one segment: compute `interval` (or the remainder) and then
    // checkpoint it. Progress only commits when the checkpoint finishes.
    const double segment = std::min(p.interval, p.work_seconds - done);
    const double attempt_end = now + segment + p.checkpoint_seconds;
    if (fail.next() >= attempt_end) {
      if (tracer) {
        tracer->complete(obs::kCheckpointTrack, "compute", "ckpt", now,
                         now + segment);
        tracer->complete(obs::kCheckpointTrack, "checkpoint", "ckpt",
                         now + segment, attempt_end);
      }
      now = attempt_end;
      done += segment;
      ++r.checkpoints;
      continue;
    }
    // Failure mid-segment (or mid-checkpoint): progress since the last
    // checkpoint is lost, pay the restart.
    const double failed_at = fail.next();
    ++r.failures;
    if (tracer) {
      tracer->instant(obs::kCheckpointTrack, "failure", "ckpt", failed_at);
      tracer->complete(obs::kCheckpointTrack, "restart", "ckpt", failed_at,
                       failed_at + p.restart_seconds);
    }
    now = failed_at + p.restart_seconds;
    fail.advance_past(now);
  }
  r.wall_seconds = now;
  r.utilization = p.work_seconds / now;
  return r;
}

}  // namespace pdsi::failure
