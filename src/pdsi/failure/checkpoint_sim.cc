#include "pdsi/failure/checkpoint_sim.h"

#include <cmath>

namespace pdsi::failure {

CheckpointSimResult SimulateCheckpointing(const CheckpointSimParams& p, Rng& rng) {
  CheckpointSimResult r;
  const double gamma_term = std::tgamma(1.0 + 1.0 / p.weibull_shape);
  const double scale = p.mtti_seconds / gamma_term;

  double done = 0.0;        // committed (checkpointed) work
  double now = 0.0;
  double next_failure = rng.weibull(p.weibull_shape, scale);

  while (done < p.work_seconds) {
    // Attempt one segment: compute `interval` (or the remainder) and then
    // checkpoint it. Progress only commits when the checkpoint finishes.
    const double segment = std::min(p.interval, p.work_seconds - done);
    const double attempt_end = now + segment + p.checkpoint_seconds;
    if (next_failure >= attempt_end) {
      now = attempt_end;
      done += segment;
      ++r.checkpoints;
      continue;
    }
    // Failure mid-segment (or mid-checkpoint): progress since the last
    // checkpoint is lost, pay the restart.
    ++r.failures;
    now = next_failure + p.restart_seconds;
    while (next_failure <= now) {
      next_failure += rng.weibull(p.weibull_shape, scale);
    }
  }
  r.wall_seconds = now;
  r.utilization = p.work_seconds / now;
  return r;
}

}  // namespace pdsi::failure
