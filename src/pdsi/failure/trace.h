// Synthetic failure traces calibrated to the published analyses of the
// LANL data (Schroeder & Gibson, FAST'07 / DSN'06):
//  * time-between-failure is well fit by a Weibull with shape < 1
//    (decreasing hazard; Poisson models underestimate burstiness);
//  * disk replacement rates show no infant-mortality bathtub — they grow
//    steadily with deployment age;
//  * enterprise and nearline drives replace at similar rates;
//  * node failure counts are roughly linear in the number of processor
//    chips.
// The generator produces traces embodying these properties; the analysis
// functions re-derive them, so the whole Fig. 3.3 pipeline is testable.
#pragma once

#include <cstdint>
#include <vector>

#include "pdsi/common/rng.h"
#include "pdsi/common/stats.h"

namespace pdsi::failure {

enum class FailureClass { hardware, software, network, environment, unknown };

struct FailureEvent {
  double time;              ///< seconds since system deployment
  std::uint32_t node;
  FailureClass what;
  double repair_seconds;
};

struct SystemTraceParams {
  std::uint32_t nodes = 1024;
  std::uint32_t chips_per_node = 2;
  double years = 5.0;
  /// Mean interrupts per chip-year (LANL analysis: ~0.1-0.7 depending on
  /// system class; Fig. 4 uses an optimistic 0.1).
  double interrupts_per_chip_year = 0.25;
  /// Weibull shape for time-between-failure (FAST'07: 0.7-0.8).
  double tbf_weibull_shape = 0.75;
  /// Drive-ageing effect: hazard multiplier per deployed year (no infant
  /// mortality; replacement rate grows with age).
  double ageing_per_year = 1.12;
  /// Lognormal repair time parameters (median ~1.5 h, heavy tail).
  double repair_mu = std::log(5400.0);
  double repair_sigma = 1.0;
  /// Correlated follow-up failures: after each event, another strikes
  /// with this probability within ~burst_mean_gap (LANL analysis found
  /// strong short-range correlation; this is what gives the *system-wide*
  /// time-between-failure its decreasing-hazard Weibull shape — pooled
  /// independent renewals alone would look Poisson).
  double burst_probability = 0.3;
  double burst_mean_gap = 2.0 * 3600.0;
};

/// Generates a whole-system failure trace, sorted by time.
std::vector<FailureEvent> GenerateTrace(const SystemTraceParams& params, Rng& rng);

/// Events per node-year within each deployment year — the "replacement
/// rate vs age" series that refutes the bathtub model.
std::vector<double> AnnualRatePerNode(const std::vector<FailureEvent>& trace,
                                      const SystemTraceParams& params);

/// Weibull fit of the system-wide time-between-failure sequence.
WeibullFit FitTimeBetweenFailures(const std::vector<FailureEvent>& trace);

/// Mean time between interrupts observed in a trace (seconds).
double ObservedMtti(const std::vector<FailureEvent>& trace, double total_seconds);

}  // namespace pdsi::failure
